//! Plan execution.
//!
//! A straightforward materializing executor: each operator produces a
//! vector of rows. Correlated subqueries receive the outer row scopes as a
//! stack of [`Frame`]s; CTEs are materialized once per SELECT and shared
//! through a chained [`CteEnv`]. A fuel counter bounds total row work so
//! that injected hang bugs (and any accidental blow-ups) surface as
//! [`Error::Hang`] instead of wedging a campaign.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::ast::{AggFunc, Expr, JoinKind, Select, SelectItem, SetOp, SortOrder};
use crate::bugs::{BugId, BugRegistry};
use crate::catalog::Catalog;
use crate::coverage::Coverage;
use crate::dialect::Dialect;
use crate::error::{Error, Result};
use crate::eval::{compute_aggregate, eval_expr, truthiness, AggValues, Clause, ExprCtx};
use crate::plan::{self, BodyPlan, CorePlan, FromPlan, PlanCtx, SelectPlan};
use crate::value::{OrdRow, OrdValue, Relation, Row, Value};

/// Which statement kind is executing (several mutants key on this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StmtKind {
    Select,
    Insert,
    Update,
    Delete,
}

/// Shared execution context for one statement.
pub struct EngineCtx<'a> {
    pub catalog: &'a Catalog,
    pub dialect: Dialect,
    pub bugs: &'a BugRegistry,
    pub cov: &'a Coverage,
    pub optimize: bool,
    pub stmt: StmtKind,
    fuel: Cell<u64>,
}

impl<'a> EngineCtx<'a> {
    pub fn new(
        catalog: &'a Catalog,
        dialect: Dialect,
        bugs: &'a BugRegistry,
        cov: &'a Coverage,
        optimize: bool,
        stmt: StmtKind,
        fuel: u64,
    ) -> Self {
        EngineCtx { catalog, dialect, bugs, cov, optimize, stmt, fuel: Cell::new(fuel) }
    }

    /// Spend `n` units of row work; exceeding the budget is a hang.
    #[inline]
    pub fn consume_fuel(&self, n: u64) -> Result<()> {
        let left = self.fuel.get();
        if left < n {
            return Err(Error::Hang);
        }
        self.fuel.set(left - n);
        Ok(())
    }

    pub fn plan_ctx(&self) -> PlanCtx<'a> {
        PlanCtx {
            catalog: self.catalog,
            dialect: self.dialect,
            bugs: self.bugs,
            cov: self.cov,
            optimize: self.optimize,
        }
    }
}

/// Metadata of one output column of a relation in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct ColMeta {
    /// Qualifying alias (lowercase), if any.
    pub table: Option<String>,
    /// Column name (lowercase).
    pub name: String,
    /// True when the column came from an expanded view.
    pub from_view: bool,
    /// True when the column came from a CTE scan.
    pub from_cte: bool,
}

/// Schema of a relation in flight.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    pub cols: Vec<ColMeta>,
}

impl Schema {
    fn concat(mut self, other: Schema) -> Schema {
        self.cols.extend(other.cols);
        self
    }
}

/// One visible row scope (innermost scope is the last frame).
#[derive(Clone, Copy)]
pub struct Frame<'a> {
    pub schema: &'a Schema,
    pub row: &'a [Value],
}

/// Materialized CTEs visible to the current query, chained to enclosing
/// queries' CTEs.
pub struct CteEnv<'a> {
    parent: Option<&'a CteEnv<'a>>,
    entries: Vec<(String, Rc<CteData>)>,
}

/// A materialized CTE.
pub struct CteData {
    pub columns: Vec<String>,
    pub rel: Relation,
    reads: Cell<u32>,
}

impl CteEnv<'static> {
    pub fn root() -> Self {
        CteEnv { parent: None, entries: Vec::new() }
    }
}

impl<'a> CteEnv<'a> {
    fn lookup(&self, name: &str) -> Option<Rc<CteData>> {
        for (n, data) in self.entries.iter().rev() {
            if n == name {
                return Some(Rc::clone(data));
            }
        }
        self.parent.and_then(|p| p.lookup(name))
    }

    /// All visible CTE names (used to seed subquery planning).
    pub fn names(&self) -> std::collections::BTreeSet<String> {
        let mut out = self.parent.map(|p| p.names()).unwrap_or_default();
        out.extend(self.entries.iter().map(|(n, _)| n.clone()));
        out
    }
}

/// Evaluation environment handed to the expression evaluator.
#[derive(Clone, Copy)]
pub struct EvalEnv<'a> {
    pub ctx: &'a EngineCtx<'a>,
    pub scopes: &'a [Frame<'a>],
    pub aggs: Option<&'a AggValues>,
    pub ctes: &'a CteEnv<'a>,
    pub info: ExprCtx,
}

impl<'a> EvalEnv<'a> {
    /// Environment for child sub-expressions (clears `top_level`).
    pub fn child(self) -> Self {
        EvalEnv { info: self.info.child(), ..self }
    }
}

/// Execute a subquery from inside expression evaluation: plan it lazily
/// and run it with the current scopes as outer context.
pub fn exec_subquery(query: &Select, env: EvalEnv) -> Result<Relation> {
    let pctx = env.ctx.plan_ctx();
    let plan = plan::plan_select(query, &pctx, &env.ctes.names())?;
    exec_select_plan(&plan, env.ctx, env.ctes, env.scopes, env.info.depth + 1)
}

/// Plan and execute a top-level SELECT; returns the result and the plan
/// fingerprint (Table 3's "unique query plans" metric).
pub fn run_query(select: &Select, ctx: &EngineCtx) -> Result<(Relation, u64)> {
    let pctx = ctx.plan_ctx();
    let plan = plan::plan_select(select, &pctx, &std::collections::BTreeSet::new())?;
    let fp = plan::fingerprint(&plan);
    let root = CteEnv::root();
    let rel = exec_select_plan(&plan, ctx, &root, &[], 0)?;
    Ok((rel, fp))
}

/// Execute a planned SELECT.
pub fn exec_select_plan(
    plan: &SelectPlan,
    ctx: &EngineCtx,
    outer_ctes: &CteEnv,
    outer_scopes: &[Frame],
    depth: u32,
) -> Result<Relation> {
    // Materialize CTEs in definition order; each sees its predecessors.
    let mut local: Vec<(String, Rc<CteData>)> = Vec::with_capacity(plan.ctes.len());
    for (name, columns, cte_plan) in &plan.ctes {
        let env = CteEnv { parent: Some(outer_ctes), entries: local.clone() };
        ctx.cov.hit("exec::cte_eval");
        let rel = exec_select_plan(cte_plan, ctx, &env, &[], depth)?;
        let cols = if columns.is_empty() {
            rel.columns.clone()
        } else {
            if columns.len() != rel.columns.len() {
                return Err(Error::Catalog(format!(
                    "CTE {name} declares {} columns but its query returns {}",
                    columns.len(),
                    rel.columns.len()
                )));
            }
            columns.iter().map(|c| c.to_ascii_lowercase()).collect()
        };
        local.push((name.clone(), Rc::new(CteData { columns: cols, rel, reads: Cell::new(0) })));
    }
    let ctes = CteEnv { parent: Some(outer_ctes), entries: local };

    // Bug hook: TidbInternalSetOpOrderBy.
    if ctx.bugs.active(BugId::TidbInternalSetOpOrderBy)
        && matches!(plan.body, BodyPlan::SetOp { .. })
        && plan.order_by.iter().any(|o| matches!(o.expr, Expr::Literal(Value::Int(_))))
    {
        return Err(Error::Internal("cannot resolve positional ORDER BY over set operation".into()));
    }

    let (mut rel, pre_rows, pre_schema) = exec_body(&plan.body, ctx, &ctes, outer_scopes, depth)?;

    // ORDER BY.
    if !plan.order_by.is_empty() {
        ctx.cov.hit("exec::sort");
        sort_relation(&mut rel, pre_rows, pre_schema.as_ref(), plan, ctx, &ctes, outer_scopes, depth)?;
    }

    // OFFSET / LIMIT.
    if let Some(off) = &plan.offset {
        ctx.cov.hit("exec::offset");
        let n = eval_limit_operand(off, ctx, &ctes, outer_scopes, depth, "OFFSET")?;
        rel.rows.drain(..n.min(rel.rows.len()));
    }
    if let Some(lim) = &plan.limit {
        ctx.cov.hit("exec::limit");
        let n = eval_limit_operand(lim, ctx, &ctes, outer_scopes, depth, "LIMIT")?;
        rel.rows.truncate(n);
    }

    if rel.rows.is_empty() {
        ctx.cov.hit("exec::empty_relation");
    }
    Ok(rel)
}

fn eval_limit_operand(
    e: &Expr,
    ctx: &EngineCtx,
    ctes: &CteEnv,
    outer_scopes: &[Frame],
    depth: u32,
    what: &str,
) -> Result<usize> {
    let env = EvalEnv {
        ctx,
        scopes: outer_scopes,
        aggs: None,
        ctes,
        info: ExprCtx { depth, ..ExprCtx::new(Clause::Limit) },
    };
    let v = eval_expr(e, env)?;
    match v.as_i64() {
        Some(n) if n >= 0 => Ok(n as usize),
        Some(_) => Ok(0),
        None => Err(Error::Eval(format!("{what} must be an integer"))),
    }
}

#[allow(clippy::too_many_arguments)]
fn sort_relation(
    rel: &mut Relation,
    pre_rows: Option<Vec<Row>>,
    pre_schema: Option<&Schema>,
    plan: &SelectPlan,
    ctx: &EngineCtx,
    ctes: &CteEnv,
    outer_scopes: &[Frame],
    depth: u32,
) -> Result<()> {
    // Compute sort keys per output row.
    let mut keyed: Vec<(Vec<(OrdValue, bool)>, Row)> = Vec::with_capacity(rel.rows.len());
    for (i, row) in rel.rows.iter().enumerate() {
        let mut keys = Vec::with_capacity(plan.order_by.len());
        for item in &plan.order_by {
            let desc = item.order == SortOrder::Desc;
            let v = match &item.expr {
                Expr::Literal(Value::Int(k)) => {
                    ctx.cov.hit("exec::sort_positional");
                    let idx = (*k - 1) as usize;
                    if *k < 1 || idx >= row.len() {
                        return Err(Error::Eval(format!(
                            "ORDER BY position {k} is out of range"
                        )));
                    }
                    row[idx].clone()
                }
                Expr::Column(c) if c.table.is_none() => {
                    // Prefer an output-column (alias) match, then fall back
                    // to the pre-projection scope.
                    let name = c.column.to_ascii_lowercase();
                    if let Some(idx) = rel.columns.iter().position(|n| n.eq_ignore_ascii_case(&name))
                    {
                        row[idx].clone()
                    } else {
                        eval_order_expr(&item.expr, i, &pre_rows, pre_schema, ctx, ctes, outer_scopes, depth)?
                    }
                }
                e => eval_order_expr(e, i, &pre_rows, pre_schema, ctx, ctes, outer_scopes, depth)?,
            };
            keys.push((OrdValue(v), desc));
        }
        keyed.push((keys, row.clone()));
    }
    keyed.sort_by(|(ka, _), (kb, _)| {
        for ((a, desc), (b, _)) in ka.iter().zip(kb.iter()) {
            let ord = a.cmp(b);
            let ord = if *desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    rel.rows = keyed.into_iter().map(|(_, r)| r).collect();
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn eval_order_expr(
    e: &Expr,
    row_idx: usize,
    pre_rows: &Option<Vec<Row>>,
    pre_schema: Option<&Schema>,
    ctx: &EngineCtx,
    ctes: &CteEnv,
    outer_scopes: &[Frame],
    depth: u32,
) -> Result<Value> {
    match (pre_rows, pre_schema) {
        (Some(rows), Some(schema)) if row_idx < rows.len() => {
            let mut frames = outer_scopes.to_vec();
            frames.push(Frame { schema, row: &rows[row_idx] });
            let env = EvalEnv {
                ctx,
                scopes: &frames,
                aggs: None,
                ctes,
                info: ExprCtx { depth, ..ExprCtx::new(Clause::OrderBy) },
            };
            eval_expr(e, env)
        }
        _ => Err(Error::Eval(format!("cannot resolve ORDER BY expression {e}"))),
    }
}

/// Execute a body plan; returns the output relation plus, when available,
/// the pre-projection rows and schema (used by ORDER BY expressions).
fn exec_body(
    body: &BodyPlan,
    ctx: &EngineCtx,
    ctes: &CteEnv,
    outer_scopes: &[Frame],
    depth: u32,
) -> Result<(Relation, Option<Vec<Row>>, Option<Schema>)> {
    match body {
        BodyPlan::Core(core) => exec_core(core, ctx, ctes, outer_scopes, depth),
        BodyPlan::SetOp { op, all, left, right } => {
            let (l, _, _) = exec_body(left, ctx, ctes, outer_scopes, depth)?;
            let (r, _, _) = exec_body(right, ctx, ctes, outer_scopes, depth)?;
            let rel = exec_set_op(*op, *all, l, r, ctx, left, right)?;
            Ok((rel, None, None))
        }
        BodyPlan::Values(rows) => {
            ctx.cov.hit("exec::values_rows");
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                ctx.consume_fuel(1)?;
                let mut vals = Vec::with_capacity(row.len());
                for e in row {
                    let env = EvalEnv {
                        ctx,
                        scopes: outer_scopes,
                        aggs: None,
                        ctes,
                        info: ExprCtx { depth, ..ExprCtx::new(Clause::SelectList) },
                    };
                    vals.push(eval_expr(e, env)?);
                }
                out.push(vals);
            }
            let arity = rows.first().map(|r| r.len()).unwrap_or(0);
            let columns = (1..=arity).map(|i| format!("column{i}")).collect();
            Ok((Relation { columns, rows: out }, None, None))
        }
    }
}

fn core_is_distinct(body: &BodyPlan) -> bool {
    match body {
        BodyPlan::Core(c) => c.distinct,
        BodyPlan::SetOp { left, right, .. } => core_is_distinct(left) || core_is_distinct(right),
        BodyPlan::Values(_) => false,
    }
}

fn exec_set_op(
    op: SetOp,
    all: bool,
    left: Relation,
    right: Relation,
    ctx: &EngineCtx,
    left_body: &BodyPlan,
    right_body: &BodyPlan,
) -> Result<Relation> {
    if !left.rows.is_empty() && !right.rows.is_empty() && left.columns.len() != right.columns.len()
    {
        return Err(Error::Eval(format!(
            "SELECTs to the left and right of {} do not have the same number of result columns",
            op.sql_name()
        )));
    }
    // Bug hook: MysqlInternalUnionTypeUnify.
    if ctx.bugs.active(BugId::MysqlInternalUnionTypeUnify) && op == SetOp::Union {
        let lt = left.column_types();
        let rt = right.column_types();
        let clash = lt.iter().zip(rt.iter()).any(|(a, b)| {
            matches!(
                (a, b),
                (crate::value::DataType::Int, crate::value::DataType::Text)
                    | (crate::value::DataType::Text, crate::value::DataType::Int)
            )
        });
        if clash {
            return Err(Error::Internal("failed to unify UNION column types".into()));
        }
    }
    // Bug hook: DuckdbHangDistinctUnion.
    if ctx.bugs.active(BugId::DuckdbHangDistinctUnion)
        && op == SetOp::Union
        && !all
        && (core_is_distinct(left_body) || core_is_distinct(right_body))
    {
        return Err(Error::Hang);
    }
    // Bug hook: CockroachInternalIntersectNull.
    if ctx.bugs.active(BugId::CockroachInternalIntersectNull)
        && op == SetOp::Intersect
        && (left.rows.iter().any(|r| r.iter().any(Value::is_null))
            || right.rows.iter().any(|r| r.iter().any(Value::is_null)))
    {
        return Err(Error::Internal("NULL row reached INTERSECT hash table".into()));
    }

    ctx.consume_fuel((left.rows.len() + right.rows.len()) as u64)?;
    let columns = if left.columns.is_empty() { right.columns.clone() } else { left.columns.clone() };
    let rows = match (op, all) {
        (SetOp::Union, true) => {
            ctx.cov.hit("exec::union_all");
            let mut rows = left.rows;
            rows.extend(right.rows);
            rows
        }
        (SetOp::Union, false) => {
            ctx.cov.hit("exec::union");
            let mut rows = left.rows;
            rows.extend(right.rows);
            dedup_rows(rows)
        }
        (SetOp::Intersect, _) => {
            ctx.cov.hit("exec::intersect");
            let rset: std::collections::BTreeSet<OrdRow> =
                right.rows.into_iter().map(OrdRow).collect();
            let rows: Vec<Row> = left
                .rows
                .into_iter()
                .filter(|r| rset.contains(&OrdRow(r.clone())))
                .collect();
            dedup_rows(rows)
        }
        (SetOp::Except, _) => {
            ctx.cov.hit("exec::except");
            let rset: std::collections::BTreeSet<OrdRow> =
                right.rows.into_iter().map(OrdRow).collect();
            let rows: Vec<Row> = left
                .rows
                .into_iter()
                .filter(|r| !rset.contains(&OrdRow(r.clone())))
                .collect();
            dedup_rows(rows)
        }
    };
    Ok(Relation { columns, rows })
}

fn dedup_rows(rows: Vec<Row>) -> Vec<Row> {
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::with_capacity(rows.len());
    for r in rows {
        if seen.insert(OrdRow(r.clone())) {
            out.push(r);
        }
    }
    out
}

/// Result of executing a FROM clause.
struct FromResult {
    schema: Schema,
    rows: Vec<Row>,
    via_index: bool,
    has_cte: bool,
    has_full_join: bool,
}

fn exec_core(
    core: &CorePlan,
    ctx: &EngineCtx,
    ctes: &CteEnv,
    outer_scopes: &[Frame],
    depth: u32,
) -> Result<(Relation, Option<Vec<Row>>, Option<Schema>)> {
    // Hang hooks keyed on FROM shape.
    if let Some(from) = &core.from {
        if ctx.bugs.active(BugId::CockroachHangCteReuse) {
            let mut names = Vec::new();
            collect_cte_scans(from, &mut names);
            names.sort();
            if names.windows(2).any(|w| w[0] == w[1]) {
                return Err(Error::Hang);
            }
        }
        if ctx.bugs.active(BugId::DuckdbHangTripleJoin) && count_joins(from) >= 3 {
            return Err(Error::Hang);
        }
    }

    let FromResult { schema, rows, via_index, has_cte, has_full_join } = match &core.from {
        Some(f) => exec_from(f, ctx, ctes, depth)?,
        None => FromResult {
            schema: Schema::default(),
            rows: vec![Vec::new()],
            via_index: false,
            has_cte: false,
            has_full_join: false,
        },
    };

    let base_info = ExprCtx {
        clause: Clause::Where,
        top_level: true,
        via_index,
        from_has_cte: has_cte,
        depth,
    };

    // Bug hook: CockroachHangFullJoinHaving.
    if ctx.bugs.active(BugId::CockroachHangFullJoinHaving)
        && core.having.is_some()
        && has_full_join
    {
        return Err(Error::Hang);
    }

    // WHERE.
    let mut rows = rows;
    if let Some(pred) = &core.where_clause {
        rows = apply_filter(rows, &schema, pred, ctx, ctes, outer_scopes, base_info)?;
    }

    let has_aggregates = !core.group_by.is_empty()
        || core.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            _ => false,
        })
        || core.having.as_ref().is_some_and(|h| h.contains_aggregate());

    if has_aggregates {
        let (rel, reps) =
            exec_grouped(core, rows, &schema, ctx, ctes, outer_scopes, base_info)?;
        let rel = maybe_distinct(rel, core.distinct, ctx)?;
        return Ok((rel, Some(reps), Some(schema)));
    }

    // Plain projection.
    ctx.cov.hit("exec::project");
    let (columns, exprs) = expand_items(core, &schema, has_full_join, ctx)?;
    let mut out_rows = Vec::with_capacity(rows.len());
    for row in &rows {
        ctx.consume_fuel(1)?;
        let mut frames = outer_scopes.to_vec();
        frames.push(Frame { schema: &schema, row });
        let mut out = Vec::with_capacity(exprs.len());
        for e in &exprs {
            let env = EvalEnv {
                ctx,
                scopes: &frames,
                aggs: None,
                ctes,
                info: ExprCtx { clause: Clause::SelectList, ..base_info },
            };
            out.push(eval_expr(e, env)?);
        }
        out_rows.push(out);
    }
    let rel = Relation { columns, rows: out_rows };
    let rel = maybe_distinct(rel, core.distinct, ctx)?;
    Ok((rel, Some(rows), Some(schema)))
}

fn maybe_distinct(mut rel: Relation, distinct: bool, ctx: &EngineCtx) -> Result<Relation> {
    if distinct {
        ctx.cov.hit("exec::distinct_dedup");
        ctx.consume_fuel(rel.rows.len() as u64)?;
        rel.rows = dedup_rows(rel.rows);
    }
    Ok(rel)
}

/// Expand SELECT items into output column names plus one expression per
/// output column.
fn expand_items(
    core: &CorePlan,
    schema: &Schema,
    has_full_join: bool,
    ctx: &EngineCtx,
) -> Result<(Vec<String>, Vec<Expr>)> {
    let mut columns = Vec::new();
    let mut exprs = Vec::new();
    for item in &core.items {
        match item {
            SelectItem::Wildcard => {
                ctx.cov.hit("exec::wildcard");
                if schema.cols.is_empty() {
                    return Err(Error::Eval("SELECT * with no FROM clause".into()));
                }
                for col in &schema.cols {
                    columns.push(col.name.clone());
                    exprs.push(Expr::Column(crate::ast::ColumnRef {
                        table: col.table.clone(),
                        column: col.name.clone(),
                    }));
                }
            }
            SelectItem::TableWildcard(t) => {
                ctx.cov.hit("exec::wildcard");
                // Bug hook: CockroachInternalFullJoinWildcard.
                if ctx.bugs.active(BugId::CockroachInternalFullJoinWildcard) && has_full_join {
                    return Err(Error::Internal(
                        "cannot expand table wildcard over FULL JOIN".into(),
                    ));
                }
                let tl = t.to_ascii_lowercase();
                let mut found = false;
                for col in &schema.cols {
                    if col.table.as_deref() == Some(tl.as_str()) {
                        found = true;
                        columns.push(col.name.clone());
                        exprs.push(Expr::Column(crate::ast::ColumnRef {
                            table: col.table.clone(),
                            column: col.name.clone(),
                        }));
                    }
                }
                if !found {
                    return Err(Error::Catalog(format!("no such table: {t}")));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = match alias {
                    Some(a) => a.to_ascii_lowercase(),
                    None => match expr {
                        Expr::Column(c) => c.column.to_ascii_lowercase(),
                        other => other.to_string(),
                    },
                };
                columns.push(name);
                exprs.push(expr.clone());
            }
        }
    }
    if columns.is_empty() {
        return Err(Error::Parse("SELECT requires at least one result column".into()));
    }
    Ok((columns, exprs))
}

/// Grouped execution: grouping, aggregate computation, HAVING, projection.
/// Returns the output relation and one representative pre-projection row
/// per output row (for ORDER BY expressions).
#[allow(clippy::too_many_arguments)]
fn exec_grouped(
    core: &CorePlan,
    rows: Vec<Row>,
    schema: &Schema,
    ctx: &EngineCtx,
    ctes: &CteEnv,
    outer_scopes: &[Frame],
    base_info: ExprCtx,
) -> Result<(Relation, Vec<Row>)> {
    // Resolve positional GROUP BY entries to projection expressions.
    let mut group_exprs: Vec<Expr> = Vec::with_capacity(core.group_by.len());
    for g in &core.group_by {
        match g {
            Expr::Literal(Value::Int(k)) => {
                let idx = (*k - 1) as usize;
                let item = core
                    .items
                    .get(idx)
                    .ok_or_else(|| Error::Eval(format!("GROUP BY position {k} out of range")))?;
                match item {
                    SelectItem::Expr { expr, .. } => group_exprs.push(expr.clone()),
                    _ => {
                        return Err(Error::Eval(
                            "GROUP BY position must reference an expression".into(),
                        ))
                    }
                }
            }
            other => group_exprs.push(other.clone()),
        }
    }

    // Partition rows into groups (BTreeMap keeps key order deterministic).
    let mut groups: BTreeMap<Vec<OrdValue>, Vec<usize>> = BTreeMap::new();
    if group_exprs.is_empty() {
        if rows.is_empty() {
            ctx.cov.hit("exec::group_empty_input");
        } else {
            ctx.cov.hit("exec::group_single");
        }
        groups.insert(Vec::new(), (0..rows.len()).collect());
    } else {
        ctx.cov.hit("exec::group_multi");
        for (i, row) in rows.iter().enumerate() {
            ctx.consume_fuel(1)?;
            let mut frames = outer_scopes.to_vec();
            frames.push(Frame { schema, row });
            let mut key = Vec::with_capacity(group_exprs.len());
            for g in &group_exprs {
                let env = EvalEnv {
                    ctx,
                    scopes: &frames,
                    aggs: None,
                    ctes,
                    info: ExprCtx { clause: Clause::GroupBy, ..base_info },
                };
                key.push(OrdValue(eval_expr(g, env)?));
            }
            groups.entry(key).or_default().push(i);
        }
        // Grouping over an empty input with GROUP BY yields no groups.
    }

    // Bug hook: DuckdbInternalGroupByRealMany.
    if ctx.bugs.active(BugId::DuckdbInternalGroupByRealMany)
        && groups.len() > 2
        && groups.keys().any(|k| k.iter().any(|v| matches!(v.0, Value::Real(_))))
    {
        return Err(Error::Internal("REAL group key misaligned in hash table".into()));
    }

    // Bug hook: TidbInternalHavingCorrelated — a subquery under HAVING.
    if ctx.bugs.active(BugId::TidbInternalHavingCorrelated) {
        if let Some(h) = &core.having {
            if h.contains_subquery() {
                return Err(Error::Internal("failed to decorrelate subquery in HAVING".into()));
            }
        }
    }

    // Collect the distinct aggregate expressions to compute per group.
    let mut agg_exprs: Vec<Expr> = Vec::new();
    let mut collect_aggs = |e: &Expr| {
        crate::ast::visit::walk_expr_shallow(e, &mut |sub| {
            if matches!(sub, Expr::Agg { .. }) && !agg_exprs.contains(sub) {
                agg_exprs.push(sub.clone());
            }
        });
    };
    for item in &core.items {
        if let SelectItem::Expr { expr, .. } = item {
            collect_aggs(expr);
        }
    }
    if let Some(h) = &core.having {
        collect_aggs(h);
    }

    let mut group_list: Vec<(Vec<OrdValue>, Vec<usize>)> = groups.into_iter().collect();

    // Bug hook: DuckdbDistinctGroupByDrop — DISTINCT + GROUP BY drops the
    // last group. The rewrite rule pattern-matches plain grouping
    // expressions, so a CASE-shaped group key escapes it (which is what
    // lets a folded query expose the discrepancy).
    if ctx.bugs.active(BugId::DuckdbDistinctGroupByDrop)
        && core.distinct
        && !core.group_by.is_empty()
        && group_list.len() > 1
        && !matches!(group_exprs.first(), Some(Expr::Case { .. }))
    {
        group_list.pop();
    }

    let (columns, proj_exprs) = expand_items_grouped(core)?;

    let mut out_rows: Vec<Row> = Vec::with_capacity(group_list.len());
    let mut rep_rows: Vec<Row> = Vec::with_capacity(group_list.len());
    let empty_row: Row = vec![Value::Null; schema.cols.len()];

    for (_key, members) in &group_list {
        ctx.consume_fuel(1 + members.len() as u64)?;
        // Compute aggregates for this group.
        let mut aggs: AggValues = Vec::with_capacity(agg_exprs.len());
        for agg in &agg_exprs {
            let Expr::Agg { func, arg, distinct } = agg else { unreachable!() };
            let mut values = Vec::with_capacity(members.len());
            for &ri in members {
                let row = &rows[ri];
                let mut frames = outer_scopes.to_vec();
                frames.push(Frame { schema, row });
                let v = match (func, arg) {
                    (AggFunc::CountStar, _) => Value::Int(1),
                    (_, Some(a)) => {
                        let env = EvalEnv {
                            ctx,
                            scopes: &frames,
                            aggs: None,
                            ctes,
                            info: ExprCtx { clause: Clause::SelectList, ..base_info },
                        };
                        eval_expr(a, env)?
                    }
                    (_, None) => {
                        return Err(Error::Parse(format!(
                            "{}() requires an argument",
                            func.sql_name()
                        )))
                    }
                };
                values.push(v);
            }
            let rep = members.first().map(|&i| &rows[i]).unwrap_or(&empty_row);
            let mut frames = outer_scopes.to_vec();
            frames.push(Frame { schema, row: rep });
            let env = EvalEnv {
                ctx,
                scopes: &frames,
                aggs: None,
                ctes,
                info: ExprCtx { clause: Clause::SelectList, ..base_info },
            };
            let v = compute_aggregate(*func, *distinct, values, env)?;
            aggs.push((agg.clone(), v));
        }

        // Representative row: bare columns take the group's first row
        // (SQLite "bare column in aggregate query" semantics).
        let rep: Row = members.first().map(|&i| rows[i].clone()).unwrap_or_else(|| empty_row.clone());

        // HAVING.
        if let Some(h) = &core.having {
            let mut frames = outer_scopes.to_vec();
            frames.push(Frame { schema, row: &rep });
            let env = EvalEnv {
                ctx,
                scopes: &frames,
                aggs: Some(&aggs),
                ctes,
                info: ExprCtx { clause: Clause::Having, top_level: true, ..base_info },
            };
            let hv = eval_expr(h, env)?;
            if truthiness(&hv, ctx)? != Some(true) {
                ctx.cov.hit("exec::having_drop");
                continue;
            }
            ctx.cov.hit("exec::having_pass");
        }

        // Projection.
        let mut frames = outer_scopes.to_vec();
        frames.push(Frame { schema, row: &rep });
        let mut out = Vec::with_capacity(proj_exprs.len());
        for e in &proj_exprs {
            let env = EvalEnv {
                ctx,
                scopes: &frames,
                aggs: Some(&aggs),
                ctes,
                info: ExprCtx { clause: Clause::SelectList, ..base_info },
            };
            out.push(eval_expr(e, env)?);
        }
        out_rows.push(out);
        rep_rows.push(rep);
    }

    Ok((Relation { columns, rows: out_rows }, rep_rows))
}

/// In grouped execution only explicit expressions are allowed (CoddDB
/// restricts wildcards to non-aggregated queries, matching common DBMS
/// behaviour for grouped queries).
fn expand_items_grouped(core: &CorePlan) -> Result<(Vec<String>, Vec<Expr>)> {
    let mut columns = Vec::new();
    let mut exprs = Vec::new();
    for item in &core.items {
        match item {
            SelectItem::Expr { expr, alias } => {
                let name = match alias {
                    Some(a) => a.to_ascii_lowercase(),
                    None => match expr {
                        Expr::Column(c) => c.column.to_ascii_lowercase(),
                        other => other.to_string(),
                    },
                };
                columns.push(name);
                exprs.push(expr.clone());
            }
            _ => {
                return Err(Error::Eval(
                    "wildcards are not supported in aggregated queries".into(),
                ))
            }
        }
    }
    if columns.is_empty() {
        return Err(Error::Parse("SELECT requires at least one result column".into()));
    }
    Ok((columns, exprs))
}

/// Apply a WHERE filter, including the filter-site bug hooks.
#[allow(clippy::too_many_arguments)]
pub fn apply_filter(
    rows: Vec<Row>,
    schema: &Schema,
    pred: &Expr,
    ctx: &EngineCtx,
    ctes: &CteEnv,
    outer_scopes: &[Frame],
    info: ExprCtx,
) -> Result<Vec<Row>> {
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        ctx.consume_fuel(1)?;
        let mut frames = outer_scopes.to_vec();
        frames.push(Frame { schema, row: &row });
        let env = EvalEnv { ctx, scopes: &frames, aggs: None, ctes, info };
        let v = eval_expr(pred, env)?;
        let t = truthiness(&v, ctx)?;

        // Bug hook: SqliteIndexedCmpNullTrue — under an index scan a NULL
        // comparison keeps the row.
        if t.is_none()
            && info.via_index
            && matches!(pred, Expr::Binary { op, .. } if op.is_comparison())
            && ctx.bugs.active(BugId::SqliteIndexedCmpNullTrue)
        {
            out.push(row);
            continue;
        }
        // Bug hook: CockroachAndNullTopConjunct — a top-level AND that
        // evaluates to NULL keeps the row.
        if t.is_none()
            && matches!(pred, Expr::Binary { op: crate::ast::BinaryOp::And, .. })
            && ctx.bugs.active(BugId::CockroachAndNullTopConjunct)
        {
            out.push(row);
            continue;
        }

        match t {
            Some(true) => {
                ctx.cov.hit("exec::filter_pass");
                out.push(row);
            }
            Some(false) => ctx.cov.hit("exec::filter_drop"),
            None => ctx.cov.hit("exec::filter_null"),
        }
    }
    Ok(out)
}

fn collect_cte_scans(from: &FromPlan, out: &mut Vec<String>) {
    match from {
        FromPlan::CteScan { name, .. } => out.push(name.clone()),
        FromPlan::Join { left, right, .. } => {
            collect_cte_scans(left, out);
            collect_cte_scans(right, out);
        }
        FromPlan::Filtered { input, .. } => collect_cte_scans(input, out),
        _ => {}
    }
}

fn count_joins(from: &FromPlan) -> usize {
    match from {
        FromPlan::Join { left, right, .. } => 1 + count_joins(left) + count_joins(right),
        FromPlan::Filtered { input, .. } => count_joins(input),
        _ => 0,
    }
}

fn exec_from(from: &FromPlan, ctx: &EngineCtx, ctes: &CteEnv, depth: u32) -> Result<FromResult> {
    match from {
        FromPlan::SeqScan { table, alias } => {
            let t = ctx.catalog.table(table)?;
            ctx.consume_fuel(t.rows.len() as u64)?;
            let schema = Schema {
                cols: t
                    .columns
                    .iter()
                    .map(|c| ColMeta {
                        table: Some(alias.clone()),
                        name: c.name.to_ascii_lowercase(),
                        from_view: false,
                        from_cte: false,
                    })
                    .collect(),
            };
            Ok(FromResult {
                schema,
                rows: t.rows.clone(),
                via_index: false,
                has_cte: false,
                has_full_join: false,
            })
        }
        FromPlan::IndexScan { table, alias, index, reverse } => {
            let t = ctx.catalog.table(table)?;
            let idx = ctx
                .catalog
                .index(index)
                .ok_or_else(|| Error::Catalog(format!("no such index: {index}")))?;
            ctx.consume_fuel(2 * t.rows.len() as u64)?;
            let schema = Schema {
                cols: t
                    .columns
                    .iter()
                    .map(|c| ColMeta {
                        table: Some(alias.clone()),
                        name: c.name.to_ascii_lowercase(),
                        from_view: false,
                        from_cte: false,
                    })
                    .collect(),
            };
            // Evaluate the indexed expression per row and visit rows in
            // index order — row-identical to a seq scan, different order.
            let mut keyed: Vec<(OrdValue, usize)> = Vec::with_capacity(t.rows.len());
            for (i, row) in t.rows.iter().enumerate() {
                let frames = [Frame { schema: &schema, row }];
                let env = EvalEnv {
                    ctx,
                    scopes: &frames,
                    aggs: None,
                    ctes,
                    info: ExprCtx { depth, ..ExprCtx::new(Clause::IndexExpr) },
                };
                let key = eval_expr(&idx.expr, env)?;
                keyed.push((OrdValue(key), i));
            }
            keyed.sort_by(|(a, ia), (b, ib)| a.cmp(b).then(ia.cmp(ib)));
            if *reverse {
                keyed.reverse();
            }
            let rows = keyed.into_iter().map(|(_, i)| t.rows[i].clone()).collect();
            Ok(FromResult { schema, rows, via_index: true, has_cte: false, has_full_join: false })
        }
        FromPlan::Derived { plan, alias, columns, from_view } => {
            let rel = exec_select_plan(plan, ctx, ctes, &[], depth)?;
            let names: Vec<String> = if columns.is_empty() {
                rel.columns.iter().map(|c| c.to_ascii_lowercase()).collect()
            } else {
                if columns.len() != rel.columns.len() {
                    return Err(Error::Catalog(format!(
                        "{alias} declares {} columns but its query returns {}",
                        columns.len(),
                        rel.columns.len()
                    )));
                }
                columns.iter().map(|c| c.to_ascii_lowercase()).collect()
            };
            let schema = Schema {
                cols: names
                    .into_iter()
                    .map(|name| ColMeta {
                        table: Some(alias.clone()),
                        name,
                        from_view: *from_view,
                        from_cte: false,
                    })
                    .collect(),
            };
            Ok(FromResult {
                schema,
                rows: rel.rows,
                via_index: false,
                has_cte: false,
                has_full_join: false,
            })
        }
        FromPlan::ValuesScan { rows, alias, columns } => {
            ctx.cov.hit("exec::values_rows");
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                ctx.consume_fuel(1)?;
                let mut vals = Vec::with_capacity(row.len());
                for e in row {
                    let env = EvalEnv {
                        ctx,
                        scopes: &[],
                        aggs: None,
                        ctes,
                        info: ExprCtx { depth, ..ExprCtx::new(Clause::SelectList) },
                    };
                    vals.push(eval_expr(e, env)?);
                }
                out.push(vals);
            }
            let arity = rows.first().map(|r| r.len()).unwrap_or(0);
            let names: Vec<String> = if columns.is_empty() {
                (1..=arity).map(|i| format!("column{i}")).collect()
            } else {
                if columns.len() != arity {
                    return Err(Error::Catalog(format!(
                        "{alias} declares {} columns but VALUES has {arity}",
                        columns.len()
                    )));
                }
                columns.clone()
            };
            let schema = Schema {
                cols: names
                    .into_iter()
                    .map(|name| ColMeta {
                        table: Some(alias.clone()),
                        name,
                        from_view: false,
                        from_cte: false,
                    })
                    .collect(),
            };
            Ok(FromResult {
                schema,
                rows: out,
                via_index: false,
                has_cte: false,
                has_full_join: false,
            })
        }
        FromPlan::CteScan { name, alias } => {
            let data = ctes
                .lookup(name)
                .ok_or_else(|| Error::Catalog(format!("no such CTE: {name}")))?;
            if data.reads.get() > 0 {
                ctx.cov.hit("exec::cte_reuse");
            }
            data.reads.set(data.reads.get() + 1);
            ctx.consume_fuel(data.rel.rows.len() as u64)?;
            let schema = Schema {
                cols: data
                    .columns
                    .iter()
                    .map(|c| ColMeta {
                        table: Some(alias.clone()),
                        name: c.to_ascii_lowercase(),
                        from_view: false,
                        from_cte: true,
                    })
                    .collect(),
            };
            Ok(FromResult {
                schema,
                rows: data.rel.rows.clone(),
                via_index: false,
                has_cte: true,
                has_full_join: false,
            })
        }
        FromPlan::Join { kind, on, left, right } => {
            let l = exec_from(left, ctx, ctes, depth)?;
            let r = exec_from(right, ctx, ctes, depth)?;
            exec_join(*kind, on.as_ref(), l, r, ctx, ctes, depth)
        }
        FromPlan::Filtered { input, pred, is_clause_root } => {
            let mut res = exec_from(input, ctx, ctes, depth)?;
            // A pushed predicate is still the clause's top-level
            // expression only if it was the entire WHERE clause;
            // conjunction fragments are not.
            let info = ExprCtx {
                clause: Clause::Where,
                top_level: *is_clause_root,
                via_index: res.via_index,
                from_has_cte: res.has_cte,
                depth,
            };
            res.rows = apply_filter(res.rows, &res.schema, pred, ctx, ctes, &[], info)?;
            Ok(res)
        }
    }
}

fn is_inequality(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Binary { op, .. }
            if matches!(op, crate::ast::BinaryOp::Lt | crate::ast::BinaryOp::Le
                | crate::ast::BinaryOp::Gt | crate::ast::BinaryOp::Ge)
    )
}

fn exec_join(
    kind: JoinKind,
    on: Option<&Expr>,
    left: FromResult,
    right: FromResult,
    ctx: &EngineCtx,
    ctes: &CteEnv,
    depth: u32,
) -> Result<FromResult> {
    let schema = left.schema.clone().concat(right.schema.clone());
    let lw = left.schema.cols.len();
    let rw = right.schema.cols.len();

    // Crash hooks: the DuckDB IEJoin bugs (both fixed upstream; modelled
    // here as Error::Crash instead of a process abort).
    if let Some(on_expr) = on {
        if ctx.bugs.active(BugId::DuckdbCrashIEJoinRange) {
            if let Expr::Binary { op: crate::ast::BinaryOp::And, left: a, right: b } = on_expr {
                if is_inequality(a) && is_inequality(b) {
                    return Err(Error::Crash(
                        "segmentation fault in IEJoin (index out of bounds)".into(),
                    ));
                }
            }
        }
        if ctx.bugs.active(BugId::DuckdbCrashIEJoinTypes) && is_inequality(on_expr) {
            if let (Some(lrow), Some(rrow)) = (left.rows.first(), right.rows.first()) {
                let mut combined = lrow.clone();
                combined.extend(rrow.iter().cloned());
                if let Expr::Binary { left: a, right: b, .. } = on_expr {
                    let frames = [Frame { schema: &schema, row: &combined }];
                    let env = EvalEnv {
                        ctx,
                        scopes: &frames,
                        aggs: None,
                        ctes,
                        info: ExprCtx { depth, ..ExprCtx::new(Clause::JoinOn) },
                    };
                    let av = eval_expr(a, env).unwrap_or(Value::Null);
                    let bv = eval_expr(b, env).unwrap_or(Value::Null);
                    let mixed = matches!(
                        (&av, &bv),
                        (Value::Int(_), Value::Real(_)) | (Value::Real(_), Value::Int(_))
                    );
                    if mixed {
                        return Err(Error::Crash(
                            "segmentation fault in IEJoin (operand type mismatch)".into(),
                        ));
                    }
                }
            }
        }
    }

    // Bug hook: SqliteJoinOnViewLeftTrue — a *comparison* ON predicate
    // that reads a view-sourced column is treated as TRUE under outer
    // joins (the rewrite pattern-matches bare comparisons, so a folded
    // CASE predicate escapes it).
    let on_forced_true = match (on, kind) {
        (Some(pred), JoinKind::Left | JoinKind::Full)
            if ctx.bugs.active(BugId::SqliteJoinOnViewLeftTrue)
                && matches!(pred, Expr::Binary { op, .. } if op.is_comparison()) =>
        {
            pred.shallow_column_refs().iter().any(|c| {
                schema.cols.iter().any(|col| {
                    col.from_view
                        && col.name == c.column.to_ascii_lowercase()
                        && match &c.table {
                            Some(t) => {
                                col.table.as_deref() == Some(t.to_ascii_lowercase().as_str())
                            }
                            None => true,
                        }
                })
            })
        }
        _ => false,
    };

    let info = ExprCtx {
        clause: Clause::JoinOn,
        top_level: true,
        via_index: false,
        from_has_cte: left.has_cte || right.has_cte,
        depth,
    };

    let mut rows: Vec<Row> = Vec::new();
    let mut right_matched = vec![false; right.rows.len()];

    for lrow in &left.rows {
        let mut matched = false;
        for (ri, rrow) in right.rows.iter().enumerate() {
            ctx.consume_fuel(1)?;
            let mut combined = lrow.clone();
            combined.extend(rrow.iter().cloned());
            let is_match = if on_forced_true {
                true
            } else {
                match on {
                    None => true,
                    Some(pred) => {
                        let frames = [Frame { schema: &schema, row: &combined }];
                        let env =
                            EvalEnv { ctx, scopes: &frames, aggs: None, ctes, info };
                        let v = eval_expr(pred, env)?;
                        truthiness(&v, ctx)? == Some(true)
                    }
                }
            };
            if is_match {
                ctx.cov.hit("exec::join_probe_match");
                matched = true;
                right_matched[ri] = true;
                rows.push(combined);
            } else {
                ctx.cov.hit("exec::join_probe_miss");
            }
        }
        if !matched && matches!(kind, JoinKind::Left | JoinKind::Full) {
            ctx.cov.hit("exec::join_pad_left");
            let mut padded = lrow.clone();
            padded.extend(std::iter::repeat_with(|| Value::Null).take(rw));
            rows.push(padded);
        }
    }
    if matches!(kind, JoinKind::Right | JoinKind::Full) {
        for (ri, rrow) in right.rows.iter().enumerate() {
            if !right_matched[ri] {
                ctx.cov.hit("exec::join_pad_right");
                let mut padded: Row = std::iter::repeat_with(|| Value::Null).take(lw).collect();
                padded.extend(rrow.iter().cloned());
                rows.push(padded);
            }
        }
    }

    Ok(FromResult {
        schema,
        rows,
        via_index: left.via_index || right.via_index,
        has_cte: left.has_cte || right.has_cte,
        has_full_join: kind == JoinKind::Full || left.has_full_join || right.has_full_join,
    })
}
