//! SQL values, data types and comparison semantics.
//!
//! CoddDB models the storage classes the paper's target systems share:
//! `NULL`, 64-bit integers, doubles, text and booleans. Two comparison
//! regimes coexist:
//!
//! * [`Value::sql_cmp`] — SQL three-valued comparison used by predicates
//!   (`NULL` compares as *unknown*),
//! * [`Value::total_cmp`] — a total order used for sorting, grouping,
//!   `UNION` de-duplication and order-insensitive result comparison
//!   (`NULL` sorts first, like SQLite).

use std::cmp::Ordering;
use std::fmt;
use std::rc::Rc;

/// Column / expression data types.
///
/// `Any` is SQLite's untyped-column affinity: the column accepts every
/// storage class. Strict dialects never produce `Any` columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Int,
    Real,
    Text,
    Bool,
    Any,
}

impl DataType {
    /// SQL spelling used by the renderer and `CREATE TABLE`.
    pub fn sql_name(self) -> &'static str {
        match self {
            DataType::Int => "INT",
            DataType::Real => "REAL",
            DataType::Text => "TEXT",
            DataType::Bool => "BOOLEAN",
            DataType::Any => "ANY",
        }
    }

    /// Whether a value of type `other` can be stored in a column of `self`
    /// without an explicit cast under a *strict* dialect.
    pub fn accepts(self, other: DataType) -> bool {
        match (self, other) {
            (DataType::Any, _) | (_, DataType::Any) => true,
            (DataType::Real, DataType::Int) => true,
            (a, b) => a == b,
        }
    }

    /// Parse a type name as it appears in SQL. Accepts the common aliases
    /// used by the paper's test cases (`INT4`, `INT8`, `BIGINT`, ...).
    pub fn parse(name: &str) -> Option<DataType> {
        let up = name.to_ascii_uppercase();
        match up.as_str() {
            "INT" | "INTEGER" | "INT4" | "INT8" | "BIGINT" | "SMALLINT" => Some(DataType::Int),
            "REAL" | "FLOAT" | "DOUBLE" | "FLOAT8" => Some(DataType::Real),
            "TEXT" | "VARCHAR" | "CHAR" | "STRING" | "CLOB" => Some(DataType::Text),
            "BOOL" | "BOOLEAN" => Some(DataType::Bool),
            "ANY" => Some(DataType::Any),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

/// A single SQL value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Int(i64),
    Real(f64),
    Text(String),
    Bool(bool),
}

/// Storage-class rank used for cross-class comparison (SQLite semantics:
/// `NULL < BOOLEAN < numeric < TEXT`).
fn class_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) | Value::Real(_) => 2,
        Value::Text(_) => 3,
    }
}

impl Value {
    /// The dynamic type of this value. `NULL` reports `Any`.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Any,
            Value::Int(_) => DataType::Int,
            Value::Real(_) => DataType::Real,
            Value::Text(_) => DataType::Text,
            Value::Bool(_) => DataType::Bool,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it has one without text coercion.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Real(r) => Some(*r),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Integer view without text coercion (`Real` must be integral).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Bool(b) => Some(if *b { 1 } else { 0 }),
            Value::Real(r) if r.fract() == 0.0 && r.is_finite() => Some(*r as i64),
            _ => None,
        }
    }

    /// SQLite-style numeric coercion of text: parse the longest numeric
    /// prefix, defaulting to 0. Used for flexible-typing dialects only.
    pub fn coerce_f64(&self) -> f64 {
        match self {
            Value::Text(s) => parse_numeric_prefix(s),
            other => other.as_f64().unwrap_or(0.0),
        }
    }

    /// SQL comparison: `None` when either side is `NULL` (unknown).
    ///
    /// Cross-class comparisons follow SQLite: numbers compare with numbers
    /// (ints and reals interoperate), everything else compares by storage
    /// class rank first, then within the class.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.nonnull_cmp(other))
    }

    /// Total order over values, `NULL` first. Safe for sorting keys.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        match (self.is_null(), other.is_null()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            (false, false) => self.nonnull_cmp(other),
        }
    }

    fn nonnull_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Real(a), Real(b)) => a.total_cmp(b),
            (Int(a), Real(b)) => (*a as f64).total_cmp(b),
            (Real(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Text(a), Text(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            _ => class_rank(self).cmp(&class_rank(other)),
        }
    }

    /// `IS` / `IS NOT DISTINCT FROM` equality: `NULL IS NULL` is true.
    pub fn is_identical(&self, other: &Value) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }

    /// Render as a SQL literal that parses back to the same value.
    pub fn to_sql(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Int(i) => i.to_string(),
            Value::Real(r) => {
                if r.fract() == 0.0 && r.is_finite() && r.abs() < 1e15 {
                    format!("{r:.1}")
                } else {
                    format!("{r}")
                }
            }
            Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
            Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Text(s) => f.write_str(s),
            Value::Bool(b) => write!(f, "{}", if *b { "true" } else { "false" }),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Real(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Parse the longest numeric prefix of a string, SQLite-style (`"12abc"`
/// coerces to 12, `"x"` to 0).
fn parse_numeric_prefix(s: &str) -> f64 {
    let t = s.trim_start();
    let bytes = t.as_bytes();
    let mut end = 0usize;
    let mut seen_digit = false;
    let mut seen_dot = false;
    while end < bytes.len() {
        let c = bytes[end] as char;
        match c {
            '+' | '-' if end == 0 => {}
            '0'..='9' => seen_digit = true,
            '.' if !seen_dot => seen_dot = true,
            _ => break,
        }
        end += 1;
    }
    if !seen_digit {
        return 0.0;
    }
    t[..end].parse::<f64>().unwrap_or(0.0)
}

/// Ordering wrapper so values can key `BTreeMap`s (grouping, dedup).
#[derive(Debug, Clone, PartialEq)]
pub struct OrdValue(pub Value);

impl Eq for OrdValue {}
impl PartialOrd for OrdValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdValue {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A row in flight: a shared, copy-on-write slice of values.
///
/// Rows are `Rc<[Value]>`-backed so that the operator pipeline is
/// zero-copy for scans: `exec_from` hands out refcount bumps to table
/// storage instead of deep-cloning every row, joins and projections
/// freeze freshly built `Vec<Value>`s into shared slices, and DML writes
/// go through [`Row::set`], which copies only when the storage is still
/// shared (e.g. with a [`crate::Database::snapshot`]). Reads deref to
/// `&[Value]`; there is deliberately no `DerefMut` — every mutation is a
/// copy-on-write [`Row::set`].
#[derive(Debug, Clone)]
pub struct Row(Rc<[Value]>);

impl Row {
    /// Freeze a freshly built value vector into a shareable row.
    pub fn new(values: Vec<Value>) -> Row {
        Row(values.into())
    }

    pub fn as_slice(&self) -> &[Value] {
        &self.0
    }

    pub fn to_vec(&self) -> Vec<Value> {
        self.0.to_vec()
    }

    /// Copy-on-write write: in-place when this row is the sole owner of
    /// its storage, otherwise the slice is copied first (never disturbing
    /// other owners — snapshots, in-flight relations, memoized results).
    pub fn set(&mut self, index: usize, value: Value) {
        match Rc::get_mut(&mut self.0) {
            Some(slice) => slice[index] = value,
            None => {
                let mut buf = self.0.to_vec();
                buf[index] = value;
                self.0 = buf.into();
            }
        }
    }

    /// A deep copy with fresh storage (the [`crate::exec::ScanMode::Cloning`]
    /// differential baseline re-clones rows the way the pipeline did
    /// before rows were shared).
    pub fn deep_clone(&self) -> Row {
        Row(self.0.to_vec().into())
    }

    /// Do `self` and `other` share the same storage?
    pub fn shares_storage_with(&self, other: &Row) -> bool {
        Rc::ptr_eq(&self.0, &other.0)
    }
}

impl std::ops::Deref for Row {
    type Target = [Value];
    #[inline]
    fn deref(&self) -> &[Value] {
        &self.0
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Row {
        Row::new(values)
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Row {
        Row(Rc::from_iter(iter))
    }
}

impl PartialEq for Row {
    fn eq(&self, other: &Row) -> bool {
        self.0 == other.0
    }
}

/// Rows compare against plain value vectors so tests and oracles can
/// state expected results as `vec![vec![...]]` literals.
impl PartialEq<Vec<Value>> for Row {
    fn eq(&self, other: &Vec<Value>) -> bool {
        *self.0 == other[..]
    }
}

impl PartialEq<Row> for Vec<Value> {
    fn eq(&self, other: &Row) -> bool {
        self[..] == *other.0
    }
}

/// Ordering wrapper over whole rows.
#[derive(Debug, Clone, PartialEq)]
pub struct OrdRow(pub Row);

impl Eq for OrdRow {}
impl PartialOrd for OrdRow {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdRow {
    fn cmp(&self, other: &Self) -> Ordering {
        row_total_cmp(&self.0, &other.0)
    }
}

/// Lexicographic total order over rows.
pub fn row_total_cmp(a: &[Value], b: &[Value]) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        let o = x.total_cmp(y);
        if o != Ordering::Equal {
            return o;
        }
    }
    a.len().cmp(&b.len())
}

/// A materialized query result: column names plus rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Relation {
    pub columns: Vec<String>,
    pub rows: Vec<Row>,
}

impl Relation {
    pub fn new(columns: Vec<String>) -> Self {
        Relation {
            columns,
            rows: Vec::new(),
        }
    }

    pub fn single(value: Value) -> Self {
        Relation {
            columns: vec!["v".into()],
            rows: vec![Row::new(vec![value])],
        }
    }

    /// Build a relation from plain value vectors (test / oracle helper).
    pub fn from_rows(columns: Vec<String>, rows: Vec<Vec<Value>>) -> Self {
        Relation {
            columns,
            rows: rows.into_iter().map(Row::new).collect(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The scalar result: exactly one row, one column. `None` otherwise.
    pub fn scalar(&self) -> Option<&Value> {
        if self.rows.len() == 1 && self.rows[0].len() == 1 {
            Some(&self.rows[0][0])
        } else {
            None
        }
    }

    /// Infer per-column types from the data (`Any` when a column is all
    /// NULL or mixes classes). Used when materializing folded relations.
    pub fn column_types(&self) -> Vec<DataType> {
        (0..self.columns.len())
            .map(|i| {
                let mut ty: Option<DataType> = None;
                for row in &self.rows {
                    let vt = row[i].data_type();
                    if vt == DataType::Any {
                        continue;
                    }
                    ty = match ty {
                        None => Some(vt),
                        Some(t) if t == vt => Some(t),
                        Some(DataType::Real) if vt == DataType::Int => Some(DataType::Real),
                        Some(DataType::Int) if vt == DataType::Real => Some(DataType::Real),
                        Some(_) => Some(DataType::Any),
                    };
                }
                ty.unwrap_or(DataType::Any)
            })
            .collect()
    }

    /// Order-insensitive (multiset) equality — the comparison every oracle
    /// in this repo uses, since SQL results are unordered without a
    /// deterministic `ORDER BY`.
    pub fn multiset_eq(&self, other: &Relation) -> bool {
        if self.rows.len() != other.rows.len() {
            return false;
        }
        if self.rows.iter().any(|r| r.len() != self.columns.len()) {
            // Degenerate, compare directly.
            return self == other;
        }
        let mut a: Vec<&Row> = self.rows.iter().collect();
        let mut b: Vec<&Row> = other.rows.iter().collect();
        a.sort_by(|x, y| row_total_cmp(x, y));
        b.sort_by(|x, y| row_total_cmp(x, y));
        a.iter()
            .zip(b.iter())
            .all(|(x, y)| row_total_cmp(x, y) == Ordering::Equal)
    }

    /// Deep-copy every row into fresh storage (differential baselines).
    pub fn deep_clone(&self) -> Relation {
        Relation {
            columns: self.columns.clone(),
            rows: self.rows.iter().map(Row::deep_clone).collect(),
        }
    }

    /// Canonical display for reports: `col1|col2` header then rows.
    pub fn to_table_string(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join("|"));
        for row in &self.rows {
            out.push('\n');
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            out.push_str(&cells.join("|"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Null.sql_cmp(&Value::Null), None);
    }

    #[test]
    fn numeric_cross_class_comparison() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Real(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Real(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Real(3.5).sql_cmp(&Value::Int(3)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn storage_class_ordering_matches_sqlite() {
        // NULL < BOOL < numeric < TEXT under the total order.
        assert_eq!(Value::Null.total_cmp(&Value::Bool(false)), Ordering::Less);
        assert_eq!(Value::Bool(true).total_cmp(&Value::Int(-5)), Ordering::Less);
        assert_eq!(
            Value::Int(999).total_cmp(&Value::Text("a".into())),
            Ordering::Less
        );
    }

    #[test]
    fn is_identical_treats_nulls_equal() {
        assert!(Value::Null.is_identical(&Value::Null));
        assert!(!Value::Null.is_identical(&Value::Int(0)));
        assert!(Value::Int(7).is_identical(&Value::Int(7)));
    }

    #[test]
    fn sql_literal_round_trip_shapes() {
        assert_eq!(Value::Int(-3).to_sql(), "-3");
        assert_eq!(Value::Real(2.0).to_sql(), "2.0");
        assert_eq!(Value::Text("a'b".into()).to_sql(), "'a''b'");
        assert_eq!(Value::Bool(true).to_sql(), "TRUE");
        assert_eq!(Value::Null.to_sql(), "NULL");
    }

    #[test]
    fn numeric_prefix_coercion() {
        assert_eq!(Value::Text("12abc".into()).coerce_f64(), 12.0);
        assert_eq!(Value::Text("-3.5x".into()).coerce_f64(), -3.5);
        assert_eq!(Value::Text("abc".into()).coerce_f64(), 0.0);
        assert_eq!(Value::Text("  7".into()).coerce_f64(), 7.0);
    }

    #[test]
    fn multiset_equality_ignores_order() {
        let a = Relation::from_rows(
            vec!["c".into()],
            vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        );
        let b = Relation::from_rows(
            vec!["c".into()],
            vec![vec![Value::Int(2)], vec![Value::Int(1)]],
        );
        assert!(a.multiset_eq(&b));
        let c = Relation::from_rows(vec!["c".into()], vec![vec![Value::Int(2)]]);
        assert!(!a.multiset_eq(&c));
    }

    #[test]
    fn column_type_inference() {
        let r = Relation::from_rows(
            vec!["a".into(), "b".into(), "c".into()],
            vec![
                vec![Value::Int(1), Value::Null, Value::Real(1.5)],
                vec![Value::Int(2), Value::Null, Value::Int(2)],
            ],
        );
        assert_eq!(
            r.column_types(),
            vec![DataType::Int, DataType::Any, DataType::Real]
        );
    }

    #[test]
    fn row_copy_on_write_preserves_other_owners() {
        let a = Row::new(vec![Value::Int(1), Value::Int(2)]);
        let mut b = a.clone();
        assert!(a.shares_storage_with(&b));
        b.set(0, Value::Int(9));
        assert!(!a.shares_storage_with(&b));
        assert_eq!(a, vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(b, vec![Value::Int(9), Value::Int(2)]);
        // A sole owner writes in place without reallocating.
        let mut c = Row::new(vec![Value::Int(5)]);
        c.set(0, Value::Int(6));
        assert_eq!(c, vec![Value::Int(6)]);
    }

    #[test]
    fn data_type_parsing_aliases() {
        assert_eq!(DataType::parse("int8"), Some(DataType::Int));
        assert_eq!(DataType::parse("BIGINT"), Some(DataType::Int));
        assert_eq!(DataType::parse("varchar"), Some(DataType::Text));
        assert_eq!(DataType::parse("bogus"), None);
    }
}
