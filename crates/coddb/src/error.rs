//! Error taxonomy for CoddDB.
//!
//! The CODDTest paper distinguishes *expected* errors (semantically invalid
//! queries, unfixed known errors — counted as "unsuccessful queries" in
//! Table 3) from *bug signals* (internal errors, crashes and hangs — counted
//! as found bugs in Table 1). [`Error::severity`] encodes that split.

use std::fmt;

/// Every failure the engine can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Lexing / parsing failure.
    Parse(String),
    /// Unknown or duplicate table / column / index / view.
    Catalog(String),
    /// Static or dynamic type mismatch under a strict-typing dialect.
    Type(String),
    /// Runtime evaluation failure (overflow, division by zero under strict
    /// dialects, invalid cast, ...).
    Eval(String),
    /// A scalar subquery returned more than one row or more than one column.
    SubqueryCardinality(String),
    /// Feature not supported by the active dialect (e.g. `ANY`/`ALL` on the
    /// SQLite profile).
    Unsupported(String),
    /// Injected internal error (models the paper's 14 internal-error bugs).
    Internal(String),
    /// Injected crash (models the paper's 2 segfault bugs; surfaced as an
    /// error instead of aborting the process).
    Crash(String),
    /// Execution fuel exhausted (models the paper's 5 hang bugs).
    Hang,
}

/// How a test harness should treat an error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    /// An "unsuccessful query": expected, not a bug (Table 3 terminology).
    Expected,
    /// A reportable bug signal: internal error, crash or hang.
    BugSignal,
}

impl Error {
    /// Classify the error for campaign accounting.
    pub fn severity(&self) -> Severity {
        match self {
            Error::Internal(_) | Error::Crash(_) | Error::Hang => Severity::BugSignal,
            _ => Severity::Expected,
        }
    }

    /// Short machine-readable category label used in reports.
    pub fn category(&self) -> &'static str {
        match self {
            Error::Parse(_) => "parse",
            Error::Catalog(_) => "catalog",
            Error::Type(_) => "type",
            Error::Eval(_) => "eval",
            Error::SubqueryCardinality(_) => "subquery-cardinality",
            Error::Unsupported(_) => "unsupported",
            Error::Internal(_) => "internal",
            Error::Crash(_) => "crash",
            Error::Hang => "hang",
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Catalog(m) => write!(f, "catalog error: {m}"),
            Error::Type(m) => write!(f, "type error: {m}"),
            Error::Eval(m) => write!(f, "evaluation error: {m}"),
            Error::SubqueryCardinality(m) => write!(f, "subquery cardinality error: {m}"),
            Error::Unsupported(m) => write!(f, "unsupported: {m}"),
            Error::Internal(m) => write!(f, "internal error: {m}"),
            Error::Crash(m) => write!(f, "crash: {m}"),
            Error::Hang => write!(f, "query hang: execution fuel exhausted"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience result alias used across the engine.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_split_matches_paper_taxonomy() {
        assert_eq!(Error::Parse("x".into()).severity(), Severity::Expected);
        assert_eq!(Error::Type("x".into()).severity(), Severity::Expected);
        assert_eq!(Error::Eval("x".into()).severity(), Severity::Expected);
        assert_eq!(Error::Internal("x".into()).severity(), Severity::BugSignal);
        assert_eq!(Error::Crash("x".into()).severity(), Severity::BugSignal);
        assert_eq!(Error::Hang.severity(), Severity::BugSignal);
    }

    #[test]
    fn display_is_prefixed_by_category() {
        let e = Error::Internal("bad plan".into());
        assert!(e.to_string().contains("internal error"));
        assert_eq!(e.category(), "internal");
    }
}
