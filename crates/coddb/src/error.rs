//! Error taxonomy for CoddDB.
//!
//! The CODDTest paper distinguishes *expected* errors (semantically invalid
//! queries, unfixed known errors — counted as "unsuccessful queries" in
//! Table 3) from *bug signals* (internal errors, crashes and hangs — counted
//! as found bugs in Table 1). [`Error::severity`] encodes that split.

use std::fmt;

/// Which simulated medium a storage fault struck.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageSite {
    /// The write-ahead log file.
    Log,
    /// The checkpoint snapshot file.
    Snapshot,
}

impl StorageSite {
    /// Short human-readable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            StorageSite::Log => "log",
            StorageSite::Snapshot => "snapshot",
        }
    }
}

/// What kind of media fault the storage layer surfaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageFaultKind {
    /// The disk refused the `op`-th append: it is full. The statement
    /// being logged must abort cleanly (state rolled back, session keeps
    /// serving) — recovery sees exactly the committed prefix.
    NoSpace { op: u64 },
    /// A read kept failing after `attempts` tries. `permanent` records
    /// whether the fault could never heal (as opposed to a transient
    /// fault slower than the bounded retry schedule).
    ReadFault { attempts: u32, permanent: bool },
    /// Integrity verification found `findings` damaged frames/seals and
    /// the active recovery policy is fail-stop.
    Corrupted { findings: usize },
}

/// A structured storage-layer failure: the simulated medium refused an
/// operation, or fail-stop recovery refused a damaged image. These are
/// *graceful degradation*, not engine bugs — a detected media fault
/// surfaced as a `StorageError` satisfies the detect-or-identical
/// contract, so the severity is [`Severity::Expected`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StorageError {
    pub site: StorageSite,
    pub kind: StorageFaultKind,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let site = self.site.label();
        match self.kind {
            StorageFaultKind::NoSpace { op } => {
                write!(
                    f,
                    "no space left on device: {site} append at op {op} refused"
                )
            }
            StorageFaultKind::ReadFault {
                attempts,
                permanent,
            } => write!(
                f,
                "{site} read failed after {attempts} attempt(s) ({})",
                if permanent {
                    "permanent media fault"
                } else {
                    "transient fault beyond the retry cap"
                }
            ),
            StorageFaultKind::Corrupted { findings } => {
                write!(f, "{site} image failed integrity verification ({findings} finding(s), fail-stop policy)")
            }
        }
    }
}

/// Every failure the engine can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Lexing / parsing failure.
    Parse(String),
    /// Unknown or duplicate table / column / index / view.
    Catalog(String),
    /// Static or dynamic type mismatch under a strict-typing dialect.
    Type(String),
    /// Runtime evaluation failure (overflow, division by zero under strict
    /// dialects, invalid cast, ...).
    Eval(String),
    /// A scalar subquery returned more than one row or more than one column.
    SubqueryCardinality(String),
    /// Feature not supported by the active dialect (e.g. `ANY`/`ALL` on the
    /// SQLite profile).
    Unsupported(String),
    /// Injected internal error (models the paper's 14 internal-error bugs).
    Internal(String),
    /// Injected crash (models the paper's 2 segfault bugs; surfaced as an
    /// error instead of aborting the process).
    Crash(String),
    /// Execution fuel exhausted (models the paper's 5 hang bugs).
    Hang,
    /// A media fault the storage layer detected and surfaced gracefully
    /// (disk full, unreadable medium, fail-stop on a damaged image).
    Storage(StorageError),
}

/// How a test harness should treat an error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    /// An "unsuccessful query": expected, not a bug (Table 3 terminology).
    Expected,
    /// A reportable bug signal: internal error, crash or hang.
    BugSignal,
}

impl Error {
    /// Classify the error for campaign accounting.
    pub fn severity(&self) -> Severity {
        match self {
            Error::Internal(_) | Error::Crash(_) | Error::Hang => Severity::BugSignal,
            // A *detected* media fault is graceful degradation: the
            // storage layer refused the operation with a structured
            // report instead of corrupting state. Silent wrong behavior
            // under a media fault is what the recovery differential
            // flags — not this error.
            Error::Storage(_) => Severity::Expected,
            _ => Severity::Expected,
        }
    }

    /// Short machine-readable category label used in reports.
    pub fn category(&self) -> &'static str {
        match self {
            Error::Parse(_) => "parse",
            Error::Catalog(_) => "catalog",
            Error::Type(_) => "type",
            Error::Eval(_) => "eval",
            Error::SubqueryCardinality(_) => "subquery-cardinality",
            Error::Unsupported(_) => "unsupported",
            Error::Internal(_) => "internal",
            Error::Crash(_) => "crash",
            Error::Hang => "hang",
            Error::Storage(_) => "storage",
        }
    }
}

impl From<StorageError> for Error {
    fn from(e: StorageError) -> Error {
        Error::Storage(e)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Catalog(m) => write!(f, "catalog error: {m}"),
            Error::Type(m) => write!(f, "type error: {m}"),
            Error::Eval(m) => write!(f, "evaluation error: {m}"),
            Error::SubqueryCardinality(m) => write!(f, "subquery cardinality error: {m}"),
            Error::Unsupported(m) => write!(f, "unsupported: {m}"),
            Error::Internal(m) => write!(f, "internal error: {m}"),
            Error::Crash(m) => write!(f, "crash: {m}"),
            Error::Hang => write!(f, "query hang: execution fuel exhausted"),
            Error::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience result alias used across the engine.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_split_matches_paper_taxonomy() {
        assert_eq!(Error::Parse("x".into()).severity(), Severity::Expected);
        assert_eq!(Error::Type("x".into()).severity(), Severity::Expected);
        assert_eq!(Error::Eval("x".into()).severity(), Severity::Expected);
        assert_eq!(Error::Internal("x".into()).severity(), Severity::BugSignal);
        assert_eq!(Error::Crash("x".into()).severity(), Severity::BugSignal);
        assert_eq!(Error::Hang.severity(), Severity::BugSignal);
    }

    #[test]
    fn storage_errors_are_expected_and_structured() {
        let e = Error::Storage(StorageError {
            site: StorageSite::Log,
            kind: StorageFaultKind::NoSpace { op: 12 },
        });
        assert_eq!(e.severity(), Severity::Expected, "graceful degradation");
        assert_eq!(e.category(), "storage");
        let s = e.to_string();
        assert!(s.contains("storage error"), "{s}");
        assert!(s.contains("no space"), "{s}");
        assert!(s.contains("op 12"), "{s}");

        let r = Error::Storage(StorageError {
            site: StorageSite::Snapshot,
            kind: StorageFaultKind::ReadFault {
                attempts: 4,
                permanent: true,
            },
        });
        let s = r.to_string();
        assert!(s.contains("snapshot read failed after 4 attempt(s)"), "{s}");
        assert!(s.contains("permanent"), "{s}");
    }

    #[test]
    fn display_is_prefixed_by_category() {
        let e = Error::Internal("bad plan".into());
        assert!(e.to_string().contains("internal error"));
        assert_eq!(e.category(), "internal");
    }
}
