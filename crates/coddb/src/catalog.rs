//! Catalog and row storage.
//!
//! CoddDB stores everything in memory: base tables hold materialized rows,
//! views hold their defining query (expanded at plan time), and indexes
//! hold a list of indexed *expressions* (SQLite-style expression indexes —
//! the paper's Listing 1 uses `CREATE INDEX i0 ON t0 (c0 > 0)`), which the
//! planner may choose (or be forced via `INDEXED BY`) for scans. Indexes
//! whose expressions are all bare columns additionally carry a physical
//! ordered structure ([`OrdIndex`]) that the planner's seek path probes;
//! the `index_*` maintenance hooks keep those structures in lockstep with
//! DML on the base table.

use std::collections::BTreeMap;

use crate::ast::{ColumnDef, Expr, Select};
use crate::error::{Error, Result};
use crate::index::OrdIndex;
use crate::value::Row;

/// A base table with its rows.
#[derive(Debug, Clone)]
pub struct TableDef {
    pub name: String,
    pub columns: Vec<ColumnDef>,
    pub rows: Vec<Row>,
}

impl TableDef {
    pub fn column_index(&self, column: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(column))
    }

    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }
}

/// A view definition.
#[derive(Debug, Clone)]
pub struct ViewDef {
    pub name: String,
    /// Optional explicit output column names.
    pub columns: Vec<String>,
    pub query: Select,
}

/// An index definition: one or more key expressions over a table.
#[derive(Debug, Clone)]
pub struct IndexDef {
    pub name: String,
    pub table: String,
    pub exprs: Vec<Expr>,
    pub unique: bool,
    /// Physical ordered structure — present only when every key
    /// expression is a bare column of the table; expression indexes stay
    /// metadata-only and keep the legacy ordered-scan path.
    pub data: Option<OrdIndex>,
}

/// What a FROM-clause name resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelationKind {
    Table,
    View,
}

/// The in-memory catalog.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, TableDef>,
    views: BTreeMap<String, ViewDef>,
    indexes: BTreeMap<String, IndexDef>,
}

fn key(name: &str) -> String {
    name.to_ascii_lowercase()
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    // --- tables ---------------------------------------------------------

    pub fn create_table(
        &mut self,
        name: &str,
        columns: Vec<ColumnDef>,
        if_not_exists: bool,
    ) -> Result<()> {
        let k = key(name);
        if self.tables.contains_key(&k) || self.views.contains_key(&k) {
            if if_not_exists {
                return Ok(());
            }
            return Err(Error::Catalog(format!("table {name} already exists")));
        }
        if columns.is_empty() {
            return Err(Error::Catalog(format!(
                "table {name} must have at least one column"
            )));
        }
        let mut seen = std::collections::BTreeSet::new();
        for c in &columns {
            if !seen.insert(c.name.to_ascii_lowercase()) {
                return Err(Error::Catalog(format!(
                    "duplicate column {} in table {name}",
                    c.name
                )));
            }
        }
        self.tables.insert(
            k,
            TableDef {
                name: name.to_string(),
                columns,
                rows: Vec::new(),
            },
        );
        Ok(())
    }

    pub fn drop_table(&mut self, name: &str, if_exists: bool) -> Result<()> {
        let k = key(name);
        if self.tables.remove(&k).is_none() {
            if if_exists {
                return Ok(());
            }
            return Err(Error::Catalog(format!("no such table: {name}")));
        }
        // Indexes on the dropped table disappear with it.
        self.indexes
            .retain(|_, idx| !idx.table.eq_ignore_ascii_case(name));
        Ok(())
    }

    pub fn table(&self, name: &str) -> Result<&TableDef> {
        self.tables
            .get(&key(name))
            .ok_or_else(|| Error::Catalog(format!("no such table: {name}")))
    }

    pub fn table_mut(&mut self, name: &str) -> Result<&mut TableDef> {
        self.tables
            .get_mut(&key(name))
            .ok_or_else(|| Error::Catalog(format!("no such table: {name}")))
    }

    pub fn table_names(&self) -> Vec<&str> {
        self.tables.values().map(|t| t.name.as_str()).collect()
    }

    pub fn tables(&self) -> impl Iterator<Item = &TableDef> {
        self.tables.values()
    }

    // --- views ----------------------------------------------------------

    pub fn create_view(&mut self, name: &str, columns: Vec<String>, query: Select) -> Result<()> {
        let k = key(name);
        if self.tables.contains_key(&k) || self.views.contains_key(&k) {
            return Err(Error::Catalog(format!("relation {name} already exists")));
        }
        self.views.insert(
            k,
            ViewDef {
                name: name.to_string(),
                columns,
                query,
            },
        );
        Ok(())
    }

    pub fn view(&self, name: &str) -> Option<&ViewDef> {
        self.views.get(&key(name))
    }

    pub fn view_names(&self) -> Vec<&str> {
        self.views.values().map(|v| v.name.as_str()).collect()
    }

    // --- indexes --------------------------------------------------------

    pub fn create_index(
        &mut self,
        name: &str,
        table: &str,
        exprs: Vec<Expr>,
        unique: bool,
    ) -> Result<()> {
        let k = key(name);
        if self.indexes.contains_key(&k) {
            return Err(Error::Catalog(format!("index {name} already exists")));
        }
        if exprs.is_empty() {
            return Err(Error::Catalog(format!(
                "index {name} must have at least one key expression"
            )));
        }
        let t = self.table(table)?;
        let data = bare_key_cols(t, &exprs).map(|cols| OrdIndex::build(t, cols));
        self.indexes.insert(
            k,
            IndexDef {
                name: name.to_string(),
                table: table.to_string(),
                exprs,
                unique,
                data,
            },
        );
        Ok(())
    }

    pub fn index(&self, name: &str) -> Option<&IndexDef> {
        self.indexes.get(&key(name))
    }

    pub fn indexes_for_table(&self, table: &str) -> Vec<&IndexDef> {
        self.indexes
            .values()
            .filter(|i| i.table.eq_ignore_ascii_case(table))
            .collect()
    }

    pub fn index_names(&self) -> Vec<&str> {
        self.indexes.values().map(|i| i.name.as_str()).collect()
    }

    // --- physical index maintenance -------------------------------------
    //
    // DML on a base table drives these hooks so every bare-column index's
    // OrdIndex tracks the rows exactly. Recovery replay applies row
    // effects physically (bypassing the hooks) and calls
    // `rebuild_index_data` once at the end instead.

    /// Index the rows appended at positions `start..` of `table`.
    pub(crate) fn index_insert_rows(&mut self, table: &str, start: usize) {
        let k = key(table);
        let Catalog {
            tables, indexes, ..
        } = self;
        let Some(t) = tables.get(&k) else { return };
        for idx in indexes.values_mut() {
            if key(&idx.table) == k {
                if let Some(data) = idx.data.as_mut() {
                    for pos in start..t.rows.len() {
                        data.insert_row(pos, &t.rows[pos]);
                    }
                }
            }
        }
    }

    /// Re-key row `pos` of `table` after an in-place update; `old` is the
    /// pre-update row image.
    pub(crate) fn index_update_row(&mut self, table: &str, pos: usize, old: &Row) {
        let k = key(table);
        let Catalog {
            tables, indexes, ..
        } = self;
        let Some(t) = tables.get(&k) else { return };
        for idx in indexes.values_mut() {
            if key(&idx.table) == k {
                if let Some(data) = idx.data.as_mut() {
                    data.update_row(pos, old, &t.rows[pos]);
                }
            }
        }
    }

    /// Unindex deleted rows. `removed` is sorted ascending; `old_rows`
    /// are the removed rows' pre-delete images.
    pub(crate) fn index_delete_rows(&mut self, table: &str, removed: &[usize], old_rows: &[Row]) {
        let k = key(table);
        for idx in self.indexes.values_mut() {
            if key(&idx.table) == k {
                if let Some(data) = idx.data.as_mut() {
                    data.delete_rows(removed, old_rows);
                }
            }
        }
    }

    /// Rebuild every physical index structure from current table rows —
    /// the deterministic post-recovery path (WAL replay and snapshot
    /// loading mutate rows physically, bypassing the per-DML hooks).
    pub(crate) fn rebuild_index_data(&mut self) {
        let Catalog {
            tables, indexes, ..
        } = self;
        for idx in indexes.values_mut() {
            idx.data = tables
                .get(&key(&idx.table))
                .and_then(|t| bare_key_cols(t, &idx.exprs).map(|cols| OrdIndex::build(t, cols)));
        }
    }

    // --- resolution -----------------------------------------------------

    /// Resolve a FROM-clause name to a table or view.
    pub fn resolve_relation(&self, name: &str) -> Result<RelationKind> {
        let k = key(name);
        if self.tables.contains_key(&k) {
            Ok(RelationKind::Table)
        } else if self.views.contains_key(&k) {
            Ok(RelationKind::View)
        } else {
            Err(Error::Catalog(format!("no such table or view: {name}")))
        }
    }

    /// Total number of stored rows across all base tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.rows.len()).sum()
    }
}

/// If every key expression is a bare (optionally alias-free) column of
/// `table`, the column ordinals in index-key order; otherwise `None`
/// (expression indexes get no physical structure).
fn bare_key_cols(table: &TableDef, exprs: &[Expr]) -> Option<Vec<usize>> {
    exprs
        .iter()
        .map(|e| match e {
            Expr::Column(c) if c.table.is_none() => table.column_index(&c.column),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{DataType, Value};

    fn col(name: &str, ty: DataType) -> ColumnDef {
        ColumnDef {
            name: name.into(),
            ty,
            not_null: false,
        }
    }

    #[test]
    fn create_and_lookup_table_is_case_insensitive() {
        let mut cat = Catalog::new();
        cat.create_table("T0", vec![col("c0", DataType::Int)], false)
            .unwrap();
        assert!(cat.table("t0").is_ok());
        assert!(cat.table("T0").is_ok());
        assert_eq!(cat.table("t0").unwrap().column_index("C0"), Some(0));
    }

    #[test]
    fn duplicate_table_rejected_unless_if_not_exists() {
        let mut cat = Catalog::new();
        cat.create_table("t", vec![col("c", DataType::Int)], false)
            .unwrap();
        assert!(matches!(
            cat.create_table("t", vec![col("c", DataType::Int)], false),
            Err(Error::Catalog(_))
        ));
        assert!(cat
            .create_table("t", vec![col("c", DataType::Int)], true)
            .is_ok());
    }

    #[test]
    fn duplicate_column_rejected() {
        let mut cat = Catalog::new();
        let res = cat.create_table(
            "t",
            vec![col("c", DataType::Int), col("C", DataType::Text)],
            false,
        );
        assert!(matches!(res, Err(Error::Catalog(_))));
    }

    #[test]
    fn drop_table_removes_its_indexes() {
        let mut cat = Catalog::new();
        cat.create_table("t", vec![col("c", DataType::Int)], false)
            .unwrap();
        cat.create_index("i", "t", vec![Expr::bare_col("c")], false)
            .unwrap();
        assert_eq!(cat.indexes_for_table("t").len(), 1);
        cat.drop_table("t", false).unwrap();
        assert!(cat.index("i").is_none());
        assert!(matches!(cat.drop_table("t", false), Err(Error::Catalog(_))));
        assert!(cat.drop_table("t", true).is_ok());
    }

    #[test]
    fn view_name_conflicts_with_table() {
        let mut cat = Catalog::new();
        cat.create_table("t", vec![col("c", DataType::Int)], false)
            .unwrap();
        let q = Select::scalar_probe(Expr::lit(Value::Int(1)));
        assert!(cat.create_view("t", vec![], q.clone()).is_err());
        cat.create_view("v", vec!["c0".into()], q).unwrap();
        assert_eq!(cat.resolve_relation("v").unwrap(), RelationKind::View);
        assert_eq!(cat.resolve_relation("t").unwrap(), RelationKind::Table);
        assert!(cat.resolve_relation("zzz").is_err());
    }

    #[test]
    fn index_requires_existing_table() {
        let mut cat = Catalog::new();
        assert!(cat
            .create_index("i", "missing", vec![Expr::bare_col("c")], false)
            .is_err());
    }

    #[test]
    fn total_rows_sums_tables() {
        let mut cat = Catalog::new();
        cat.create_table("t", vec![col("c", DataType::Int)], false)
            .unwrap();
        cat.table_mut("t")
            .unwrap()
            .rows
            .push(vec![Value::Int(1)].into());
        cat.table_mut("t")
            .unwrap()
            .rows
            .push(vec![Value::Int(2)].into());
        assert_eq!(cat.total_rows(), 2);
    }
}
