// The coverage-point registry macro recurses once per registered point.
#![recursion_limit = "512"]

//! # CoddDB — the device-under-test substrate for the CODDTest reproduction
//!
//! An in-memory relational SQL engine built from scratch:
//!
//! * typed values with SQL three-valued logic ([`value`]),
//! * a full AST with renderer and recursive-descent parser ([`ast`],
//!   [`parser`]),
//! * a catalog with tables, views and expression indexes ([`catalog`]),
//! * a planner with constant folding, predicate pushdown, index
//!   selection and equi-join key recognition, producing fingerprintable
//!   physical plans ([`plan`]),
//! * a binding pass resolving names to ordinals once per query ([`bind`]),
//! * an executor covering joins (build/probe hash joins on bound key
//!   ordinals, with a nested-loop fallback), grouping, subqueries
//!   (correlated and non-correlated, behind a per-statement
//!   plan/bind/result cache), CTEs, set operations and DML
//!   ([`exec`], [`eval`]),
//! * five dialect profiles emulating the paper's target systems
//!   ([`dialect`]),
//! * 45 injectable bug mutants mirroring the paper's Table 1 ([`bugs`]),
//!   plus separate schemes of recovery-path mutants
//!   ([`bugs::RecoveryBugId`]), index mutants ([`bugs::IndexBugId`]) and
//!   media-fault mutants ([`bugs::MediaBugId`]),
//! * a branch-point coverage registry for the Table 3 metric
//!   ([`coverage`]),
//! * a durable storage layer: a checksummed redo log written through a
//!   simulated disk with deterministic crash injection ([`wal`]) and a
//!   recovery replayer that reconstructs exactly the committed prefix
//!   ([`recovery`]).
//!
//! The public entry point is [`Database`].
//!
//! ## The plan → bind → vectorize → exec phase contract
//!
//! A statement passes through four stages, the first three running
//! **once per statement** so that per-row work stays allocation-free:
//!
//! 1. **plan** ([`plan::plan_select`]): the AST is lowered to a
//!    [`plan::SelectPlan`] — views expanded, CTE references resolved and,
//!    with the optimizer on, constant folding / predicate pushdown / index
//!    selection applied. Plans still carry AST expressions ([`ast::Expr`]):
//!    plan shapes are what [`plan::fingerprint`] hashes, and the
//!    shape-sensitive bug mutants pattern-match them.
//! 2. **bind** ([`bind::Binder`]): as the executor instantiates each
//!    operator (and therefore knows the operator's input [`exec::Schema`]),
//!    every clause expression is compiled to a [`bind::BoundExpr`]: column
//!    names resolve to `(scope hop, ordinal)` pairs, aggregates get value
//!    slots, and bug-hook trigger shapes are precomputed. Name-resolution
//!    errors (unknown/ambiguous columns) surface here, once per query —
//!    matching real engines, where name resolution is static.
//! 3. **vectorize** ([`vec_eval`]): each bound clause expression is
//!    classified as chunk-vectorizable or not. Vectorizable filters,
//!    projections, group keys and aggregate arguments then evaluate
//!    **column-at-a-time over fixed-size row chunks** (1024 rows),
//!    with selection vectors keeping `AND`/`OR`/`CASE`/`COALESCE`/`IIF`
//!    laziness exact and per-chunk scratch coverage merged only on
//!    success. The fallback taxonomy — evaluated row-at-a-time exactly
//!    as before — is: (a) subqueries and aggregate slots (they re-enter
//!    the executor), (b) any shape a currently *active* mutant hooks
//!    (the hook must run on the authentic interpreter), (c) MySQL
//!    UPDATE/DELETE comparisons (a per-pair dialect rule), (d) chunks
//!    containing a lane whose evaluation errors (the rerun raises the
//!    exact scalar error with exact coverage and fuel), and (e) chunks
//!    the fuel budget cannot cover whole. `EXPLAIN` annotates each
//!    clause `[VEC]` or `[ROW(<reason>)]` with the planner's static
//!    prediction; [`Database::set_eval_mode`]`(`[`EvalMode::RowAtATime`]`)`
//!    disables the stage wholesale for differential testing
//!    (`coddb/tests/eval_differential.rs`: byte-identical results,
//!    coverage bitsets and fuel across modes, dialects and mutants).
//! 4. **exec** ([`exec`]): row loops evaluate bound expressions via
//!    [`eval::eval_bound`] against a reused frame stack — zero heap
//!    allocation per row for name resolution. Rows themselves are
//!    **shared, copy-on-write** ([`value::Row`] is `Rc<[Value]>`-backed):
//!    scans hand out refcount bumps to table / CTE storage instead of
//!    cloning, joins and projections freeze freshly built value vectors
//!    into shared slices, and DML writes copy only when a snapshot or
//!    in-flight relation still holds the row. Joins with recognized
//!    equality keys run as build/probe hash joins over the bound key
//!    ordinals (SQL NULL-key semantics; duplicates chain; the nested
//!    loop remains for non-equi predicates, runtime mixed-class keys,
//!    and differential testing via [`Database::set_join_mode`]).
//!    `column <cmp> row-invariant` filters classify rows by direct value
//!    comparison after evaluating the invariant side once (exact: any
//!    TEXT/non-TEXT mix or hooked context falls back to the per-row
//!    interpreter). Subqueries are planned and bound lazily at
//!    evaluation time (with the outer scopes in place) — but only
//!    **once per statement**: a per-statement cache keyed by subquery
//!    AST identity reuses the compiled plan and bindings across
//!    evaluations, and result memoization is two-tier, driven by a
//!    runtime correlation detector that records exactly which outer
//!    slots an evaluation read. No outer reads → the full result
//!    relation is memoized; outer reads → results are **memoized per
//!    outer key** (the values of precisely those slots), so a
//!    correlated subquery over K distinct outer keys executes K times,
//!    not once per outer row — `EXPLAIN` annotates the predicted
//!    strategy (`MEMO(full)` / `MEMO(keyed: n slots)` / `NONE`) and
//!    [`Database::subquery_memo_stats`] counts hits and misses.
//!    Cacheable FROM subtrees (no CTE scans, derived tables or embedded
//!    subqueries) also materialize once per statement and are shared
//!    across a correlated subquery's re-instantiations. All caches die
//!    at the statement boundary, so DML can never leak stale results.
//!
//! [`exec::BindMode::PerRow`] (via [`Database::set_bind_mode`]) re-binds
//! every row instead — the tree-walking baseline kept for benchmarking
//! the bind-once speedup on otherwise identical machinery. It bypasses
//! the per-statement caches and the hash join, so it also preserves the
//! pre-cache execution profile as a comparison point. Orthogonally,
//! [`exec::ScanMode::Cloning`] (via [`Database::set_scan_mode`]) deep-
//! clones every scanned row and rematerializes FROM subtrees per
//! instantiation — the pre-shared-row pipeline, kept for differential
//! testing (`coddb/tests/scan_differential.rs` checks byte-identical
//! results and identical coverage bitsets) and as the cloning baseline
//! in `BENCH_engine.json`.
//!
//! ## Ordered index access paths
//!
//! `CREATE INDEX` on bare columns additionally builds a physical ordered
//! structure ([`index::OrdIndex`]: a B-tree map from composite key to
//! storage positions), maintained exactly by INSERT / UPDATE / DELETE
//! and rebuilt deterministically after WAL or snapshot recovery. The
//! planner ([`plan`]) turns a **prefix** of the WHERE clause's
//! conjuncts — `col <cmp> constant` on the index's leading columns, at
//! most one range — into a [`plan::FromPlan::IndexSeek`] access path,
//! and satisfies a matching `ORDER BY` by emitting in key order and
//! skipping the sort (sort elimination; `EXPLAIN` prints the seek shape
//! and `ordered` / `reverse` flags).
//!
//! The path is **observation-exact**, not merely result-exact: a runtime
//! gate falls back to the scan unless every probed key column's stored
//! values are comparison-uniform with the probe (the same TEXT/non-TEXT
//! discipline as the fast filter), and the filter stage replays what the
//! baseline would have observed for the rows the seek skipped — their
//! fuel, and the authentic drop-path coverage bits fired once per
//! skipped outcome class via a representative evaluation
//! ([`exec`]'s `seek_filter`). Because consumed conjuncts are a prefix
//! of a left-associated `AND`, a skipped row's clause value is FALSE
//! before any residual conjunct runs, so residual errors, coverage and
//! fuel land identically in both modes.
//! [`Database::set_access_mode`]`(`[`AccessMode::ScanOnly`]`)` forces
//! every seek back to the baseline scan for differential testing
//! (`coddb/tests/index_differential.rs`: byte-identical results,
//! coverage bitsets and fuel), and a dedicated mutant scheme
//! ([`bugs::IndexBugId`]) injects seek-path bugs — stale entries after
//! UPDATE, off-by-one range bounds, dropped duplicates, ignored
//! residuals, wrong sort-elimination direction — for the campaign to
//! hunt.
//!
//! ## The storage / WAL / recovery layer
//!
//! [`Database::set_storage_mode`]`(`[`wal::StorageMode::Durable`]`)`
//! attaches a write-ahead log following the same differential-mode
//! pattern as the mode switches above: the in-memory catalog remains the
//! baseline store, and the WAL additionally records every DML/DDL
//! *effect* — per-row inserts, per-row update images, delete row sets,
//! DDL statement text — each statement sealed by a commit marker. Frames
//! are length-prefixed and checksummed ([`wal::Wal`]), written through an
//! in-memory byte-file model ([`wal::SimDisk`]) whose [`wal::FaultPlan`]
//! can deterministically crash the engine before a write (the record is
//! lost), mid-record (a torn tail survives), or after the write but
//! before the durability point (the commit marker is lost). Recovery
//! ([`recovery::recover`]) scans the surviving image — truncating at the
//! first torn or checksum-damaged frame — and replays effects per
//! statement at their commit markers, discarding uncommitted work: the
//! recovered state must be **byte-identical** ([`Database::dump_state`])
//! to a never-crashed engine that executed only the committed prefix.
//!
//! **Checkpoints.** [`Database::checkpoint`] bounds replay work by
//! serializing the full logical state to a second [`wal::SimDisk`]: a
//! `SnapshotBegin{stmt_idx}` frame, then one `Ddl` frame per DDL the
//! engine has ever executed (in original order, drops included) and one
//! `InsertRow` frame per live catalog row (tables in name order, rows in
//! physical order — both deterministic), sealed by a
//! `SnapshotEnd{stmt_idx, records}` whose record count makes torn bodies
//! detectable. Only then does a `CheckpointComplete{stmt_idx}` marker go
//! to the *log* and the log get truncated — each of these is its own
//! crashable disk operation, sharing the log's operation counter so one
//! [`wal::FaultPlan`] range covers DML traffic, snapshot writes and the
//! truncation step alike. The snapshot disk is append-only: older
//! snapshots remain on file as fallbacks.
//!
//! **The snapshot + suffix contract.** Recovery
//! ([`recovery::recover_detailed`]) scans the snapshot disk with the
//! same frame discipline as the log, keeps only *sealed* snapshots
//! (matching `stmt_idx` and exact record count), loads the newest one,
//! and then replays the log suffix — skipping any commit whose statement
//! index the snapshot already covers (a crash between the marker and the
//! truncation leaves both images whole, and replaying the overlap would
//! double-apply effects). A torn or corrupt newest snapshot falls back
//! to the previous sealed one; no sealed snapshot at all falls back to
//! genesis replay. The contract is exact, not best-effort: the chosen
//! base must equal the writer-side ground truth
//! ([`wal::Wal::durable_snapshot_stmts`] — the newest seal that reached
//! the disk before the crash), and the checkpointed differential
//! ([`recovery::recovery_divergence_checkpointed`]) reports a mismatch
//! as a divergence even when the final state happens to agree.
//!
//! **Checkpoint determinism.** Checkpoints are part of a scenario's
//! coordinates: a checkpoint schedule is a sorted list of statement
//! indices, snapshot serialization order is fully determined by the
//! catalog (no iteration-order or clock dependence), and every disk
//! operation a checkpoint performs is counted. Identical `(script,
//! schedule, FaultPlan)` triples therefore produce byte-identical log
//! *and* snapshot images — which is what lets the `recover` oracle carry
//! a `ckpt_seed` alongside `script_seed`/`fault_seed` in findings, and
//! lets the reducer shrink the checkpoint schedule as a first-class
//! axis.
//!
//! **Fault-injection determinism contract:** crash points are data, not
//! chance. [`wal::FaultPlan::seeded`]`(seed, total_ops)` derives the
//! crash op and fault mode purely from its arguments, so a `FaultPlan`
//! seed reproduces a crash scenario exactly the way `state_seed` /
//! `test_seed` reproduce a campaign test — fault seeds are part of the
//! same stable reproduction contract, and findings carry them for
//! replay. The recovery-path mutants ([`bugs::RecoveryBugId`]) hook the
//! scan and replay phases so campaigns hunt recovery bugs the way they
//! hunt optimizer bugs — without disturbing the Table 1 scheme.
//!
//! ## The media-fault model
//!
//! Crash injection ([`wal::FaultPlan`]) models a *process* dying; the
//! media-fault model ([`wal::MediaPlan`]) models the *disk* misbehaving,
//! and the two axes compose in one scenario. A `MediaPlan` is seeded by
//! the same splitmix64 scheme as a `FaultPlan` (`media_seed` rides in
//! findings next to the other seeds) and injects exactly one of:
//!
//! * **at-rest bit rot** ([`wal::MediaMode::Rot`]): a deterministic bit
//!   flip applied to the log or snapshot image *between* shutdown and
//!   recovery — corruption no write-path check could have seen;
//! * **read faults** ([`wal::MediaMode::TransientRead`] /
//!   [`wal::MediaMode::PermanentRead`]): [`wal::SimDisk::read_with_retry`]
//!   fails the first *k* attempts of every read (healing if
//!   `k <= `[`wal::READ_RETRY_CAP`]) or fails forever. The **retry
//!   contract** is bounded and deterministic: at most
//!   `READ_RETRY_CAP + 1` attempts, then a structured
//!   [`error::StorageError`] with the attempt count — never a hang, never
//!   an unbounded loop, and a success past the cap is itself a bug (the
//!   `RetryCapIgnored` mutant);
//! * **disk-full** ([`wal::MediaMode::NoSpace`]): the N-th append returns
//!   `NoSpace` and the disk stays full. The engine **degrades
//!   gracefully**: the statement aborts cleanly (catalog state rolled
//!   back, nothing marked committed), the session keeps serving reads,
//!   and recovery sees exactly the committed prefix.
//!
//! **Scrub.** [`Database::scrub`] (offline: [`recovery::scrub_images`])
//! walks every frame on both disks verifying checksums and snapshot
//! seals, and returns a quarantine report ([`recovery::ScrubReport`])
//! classifying each finding as *tail* (an ordinary crash artifact — a
//! torn frame or unsealed trailing snapshot) or *damage* (mid-image
//! corruption no crash can explain).
//!
//! **Salvage vs. fail-stop.** [`recovery::recover_with_policy`] chooses
//! what damage means: [`recovery::RecoveryPolicy::FailStop`] scrubs
//! first and refuses the image on any non-tail finding;
//! [`recovery::RecoveryPolicy::Salvage`] (the default behavior of
//! [`recovery::recover`]) truncates at the first damaged frame and may
//! therefore *drop a committed suffix* — but must never resurrect or
//! invent effects past the damage: salvaged state must equal **some**
//! committed prefix of the original history.
//!
//! **The detect-or-identical oracle.** The media differential
//! ([`recovery::recovery_divergence_media`]) holds every injected media
//! fault to one standard: it must be *detected* (a scrub finding or a
//! structured storage error) or *harmless* (recovery byte-identical to
//! the committed-prefix reference). Detected-and-degraded is fine —
//! that is what salvage is for — but **silent wrong recovery** (clean
//! scrub, no error, divergent state) is always a finding, as is salvaged
//! state matching no committed prefix. The [`bugs::MediaBugId`] mutants
//! break exactly these promises so campaigns prove the oracle can see
//! them.
//!
//! ## Plan invariants (the static verifier)
//!
//! The planner promises the executor a set of structural invariants, and
//! [`validate`] re-derives each one from the plan tree and the catalog
//! alone — never from the bug registry, so a mutant-corrupted plan cannot
//! bless itself. The checked invariants:
//!
//! * **Seek placement** — [`plan::FromPlan::IndexSeek`] appears only at
//!   the root of a core's FROM tree, over a physical (bare-column) index
//!   of the scanned table.
//! * **Seek justification** — the consumed key prefix is exactly what the
//!   WHERE clause's leading conjuncts probe: key column *j* matched by
//!   conjunct *j* with the same comparison operator and the same non-NULL
//!   literal, at most [`plan::MAX_SEEK_KEYS`] keys, at most one trailing
//!   range, range operator a real comparison. (Consumed conjuncts stay in
//!   the WHERE clause, so the plan carries its own justification.)
//! * **Sort-elimination legality** — an `ordered` seek implies the
//!   re-derived elimination decision holds: a bare core body with no
//!   grouping/aggregation, a fully-consumed predicate, uniform sort
//!   direction, bare sort keys resolving through the output-name table to
//!   exactly the index's key columns — and the seek's `reverse` flag
//!   equals the ORDER BY direction.
//! * **Hash-join shape** — recognized key pairs are side-pure over
//!   disjoint alias sets, form a prefix of the `ON` conjunction (each
//!   conjunct an equality matching its pair in either orientation), and
//!   the residual is exactly the unconsumed conjuncts, subquery-free.
//! * **Pushdown placement** — a pushed filter ([`plan::FromPlan::Filtered`])
//!   sits only directly below an inner/cross join child and reads only
//!   from its own input subtree (outer-join pushdown changes semantics).
//! * **EXPLAIN faithfulness** — every plan operator surfaces in the
//!   rendered annotation (seeks, index scans, hash joins, nested loops,
//!   pushed filters, CTE materializations, sorts); under-rendering is a
//!   violation.
//! * **Bound-form bounds** — every [`bind::BoundColumn`] (and recorded
//!   collision alternative) points inside the binder's scope stack, and
//!   every aggregate slot indexes the clause's per-group value table
//!   ([`validate::validate_bound`]).
//!
//! Debug builds assert these at the plan and bind seams for every
//! statement (clean engines only — mutant-corrupted plans are invalid by
//! design), the `verify` campaign oracle in `crates/core` reports
//! violations as findings without executing a row, and
//! [`Database::verify_select`] exposes the pass directly.

pub mod ast;
pub mod bind;
pub mod bugs;
mod cache;
pub mod catalog;
pub mod coverage;
pub mod dialect;
pub mod error;
pub mod eval;
pub mod exec;
pub mod index;
pub mod parser;
pub mod plan;
pub mod recovery;
pub mod validate;
pub mod value;
pub mod vec_eval;
pub mod wal;

mod database;

pub use bugs::{BugId, BugKind, BugRegistry, IndexBugId, MediaBugId, RecoveryBugId};
pub use database::{AccessMode, Database, ExecOutcome};
pub use dialect::Dialect;
pub use error::{Error, Result, Severity, StorageError, StorageFaultKind, StorageSite};
pub use exec::{BindMode, EvalMode, JoinMode, ScanMode};
pub use recovery::{
    recover_with_policy, recovery_divergence_media, scrub_images, RecoveryPolicy, ScrubFinding,
    ScrubReport,
};
pub use value::{DataType, Relation, Row, Value};
pub use wal::{
    FaultMode, FaultPlan, MediaMode, MediaPlan, ReadFault, StorageMode, Wal, READ_RETRY_CAP,
};
