//! # CoddDB — the device-under-test substrate for the CODDTest reproduction
//!
//! An in-memory relational SQL engine built from scratch:
//!
//! * typed values with SQL three-valued logic ([`value`]),
//! * a full AST with renderer and recursive-descent parser ([`ast`],
//!   [`parser`]),
//! * a catalog with tables, views and expression indexes ([`catalog`]),
//! * a planner with constant folding, predicate pushdown and index
//!   selection, producing fingerprintable physical plans ([`plan`]),
//! * a binding pass resolving names to ordinals once per query ([`bind`]),
//! * an executor covering joins, grouping, subqueries (correlated and
//!   non-correlated), CTEs, set operations and DML ([`exec`], [`eval`]),
//! * five dialect profiles emulating the paper's target systems
//!   ([`dialect`]),
//! * 45 injectable bug mutants mirroring the paper's Table 1 ([`bugs`]),
//! * a branch-point coverage registry for the Table 3 metric
//!   ([`coverage`]).
//!
//! The public entry point is [`Database`].
//!
//! ## The bind → plan → exec phase contract
//!
//! A statement passes through three phases, each running **once per
//! statement** so that per-row work stays allocation-free:
//!
//! 1. **plan** ([`plan::plan_select`]): the AST is lowered to a
//!    [`plan::SelectPlan`] — views expanded, CTE references resolved and,
//!    with the optimizer on, constant folding / predicate pushdown / index
//!    selection applied. Plans still carry AST expressions ([`ast::Expr`]):
//!    plan shapes are what [`plan::fingerprint`] hashes, and the
//!    shape-sensitive bug mutants pattern-match them.
//! 2. **bind** ([`bind::Binder`]): as the executor instantiates each
//!    operator (and therefore knows the operator's input [`exec::Schema`]),
//!    every clause expression is compiled to a [`bind::BoundExpr`]: column
//!    names resolve to `(scope hop, ordinal)` pairs, aggregates get value
//!    slots, and bug-hook trigger shapes are precomputed. Name-resolution
//!    errors (unknown/ambiguous columns) surface here, once per query —
//!    matching real engines, where name resolution is static.
//! 3. **exec** ([`exec`]): row loops evaluate bound expressions via
//!    [`eval::eval_bound`] against a reused frame stack — zero heap
//!    allocation per row for name resolution. Subqueries are the one
//!    deliberate exception: they are planned and bound lazily at
//!    evaluation time (with the outer scopes in place), exactly as the
//!    planner treats them.
//!
//! [`exec::BindMode::PerRow`] (via [`Database::set_bind_mode`]) re-binds
//! every row instead — the tree-walking baseline kept for benchmarking
//! the bind-once speedup on otherwise identical machinery.

pub mod ast;
pub mod bind;
pub mod bugs;
pub mod catalog;
pub mod coverage;
pub mod dialect;
pub mod error;
pub mod eval;
pub mod exec;
pub mod parser;
pub mod plan;
pub mod value;

mod database;

pub use bugs::{BugId, BugKind, BugRegistry};
pub use database::{Database, ExecOutcome};
pub use dialect::Dialect;
pub use error::{Error, Result, Severity};
pub use exec::BindMode;
pub use value::{DataType, Relation, Row, Value};
