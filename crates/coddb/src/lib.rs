//! # CoddDB — the device-under-test substrate for the CODDTest reproduction
//!
//! An in-memory relational SQL engine built from scratch:
//!
//! * typed values with SQL three-valued logic ([`value`]),
//! * a full AST with renderer and recursive-descent parser ([`ast`],
//!   [`parser`]),
//! * a catalog with tables, views and expression indexes ([`catalog`]),
//! * a planner with constant folding, predicate pushdown and index
//!   selection, producing fingerprintable physical plans ([`plan`]),
//! * an executor covering joins, grouping, subqueries (correlated and
//!   non-correlated), CTEs, set operations and DML ([`exec`], [`eval`]),
//! * five dialect profiles emulating the paper's target systems
//!   ([`dialect`]),
//! * 45 injectable bug mutants mirroring the paper's Table 1 ([`bugs`]),
//! * a branch-point coverage registry for the Table 3 metric
//!   ([`coverage`]).
//!
//! The public entry point is [`Database`].

pub mod ast;
pub mod bugs;
pub mod catalog;
pub mod coverage;
pub mod dialect;
pub mod error;
pub mod eval;
pub mod exec;
pub mod parser;
pub mod plan;
pub mod value;

mod database;

pub use bugs::{BugId, BugKind, BugRegistry};
pub use database::{Database, ExecOutcome};
pub use dialect::Dialect;
pub use error::{Error, Result, Severity};
pub use value::{DataType, Relation, Row, Value};
