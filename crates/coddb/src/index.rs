//! Physical ordered secondary indexes.
//!
//! [`OrdIndex`] is the B-tree-style structure behind every *bare-column*
//! `CREATE INDEX`: a `BTreeMap` from the composite key (the indexed
//! columns' values, in [`crate::value::Value::total_cmp`] order — NULL
//! first, Int/Real numerically interleaved) to the ascending storage
//! positions of the rows carrying that key. Expression indexes (e.g. the
//! paper's `CREATE INDEX i0 ON t0 (c0 > 0)`) stay metadata-only and keep
//! the legacy ordered-scan path.
//!
//! The maintenance contract: structures are built at CREATE INDEX,
//! updated incrementally by every INSERT/UPDATE/DELETE on the base table
//! (see the `index_*` hooks on [`crate::catalog::Catalog`]), dropped
//! with the index/table, cloned with catalog snapshots, and rebuilt
//! wholesale after WAL/snapshot recovery (replay applies row effects
//! physically, bypassing the hooks).
//!
//! Postings are storage positions sorted ascending, so a seek that
//! unions posting lists and sorts the result emits rows in **storage
//! order** — exactly the order a sequential scan would, which is what
//! lets the seek path stay byte-identical to the ScanOnly baseline.
//! Per-key-column tallies ([`KeyColStats`]) record how many indexed
//! values are non-NULL and how many of those are TEXT: the executor's
//! exactness gate refuses to seek when a probe literal's TEXT-ness is
//! not uniform with every non-NULL key (dialect coercion / strict-type
//! territory — the same discipline as the fast filter's fallback).

use std::collections::BTreeMap;
use std::ops::Bound::{Excluded, Included, Unbounded};

use crate::ast::BinaryOp;
use crate::catalog::TableDef;
use crate::value::{OrdValue, Row, Value};

/// Output of [`OrdIndex::seek`]: storage positions to emit, already in
/// emission order — ascending storage order for unordered seeks,
/// index-key order (optionally reversed key groups) for ordered ones.
/// Skipped-class representatives are a separate, on-demand computation
/// ([`OrdIndex::skip_reps`]): the executor only needs their exact
/// storage positions on the fallible filter path.
pub struct SeekOut {
    pub emit: Vec<usize>,
}

/// Per-key-column value-class tallies over every indexed row.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KeyColStats {
    /// Indexed values that are not NULL.
    pub nonnull: usize,
    /// Indexed values that are TEXT (always `<= nonnull`).
    pub text: usize,
}

/// An ordered physical index over one or more bare columns.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OrdIndex {
    /// Ordinals of the key columns in the table's column list.
    pub cols: Vec<usize>,
    /// Composite key (total order) → ascending row positions.
    pub map: BTreeMap<Vec<OrdValue>, Vec<usize>>,
    /// One tally per key column.
    pub stats: Vec<KeyColStats>,
    /// Total rows indexed (= the table's row count).
    pub rows: usize,
}

impl OrdIndex {
    /// Build the structure over a table's current rows.
    pub fn build(table: &TableDef, cols: Vec<usize>) -> OrdIndex {
        let mut idx = OrdIndex {
            stats: vec![KeyColStats::default(); cols.len()],
            cols,
            map: BTreeMap::new(),
            rows: 0,
        };
        for (pos, row) in table.rows.iter().enumerate() {
            idx.insert_row(pos, row);
        }
        idx
    }

    /// The composite key of a row.
    pub fn key_of(&self, row: &Row) -> Vec<OrdValue> {
        self.cols
            .iter()
            .map(|&c| OrdValue(row[c].clone()))
            .collect()
    }

    fn add_stats(&mut self, key: &[OrdValue]) {
        for (s, v) in self.stats.iter_mut().zip(key) {
            if !v.0.is_null() {
                s.nonnull += 1;
                if matches!(v.0, Value::Text(_)) {
                    s.text += 1;
                }
            }
        }
    }

    fn sub_stats(&mut self, key: &[OrdValue]) {
        for (s, v) in self.stats.iter_mut().zip(key) {
            if !v.0.is_null() {
                s.nonnull -= 1;
                if matches!(v.0, Value::Text(_)) {
                    s.text -= 1;
                }
            }
        }
    }

    /// Index a newly appended row at storage position `pos`.
    pub fn insert_row(&mut self, pos: usize, row: &Row) {
        let key = self.key_of(row);
        self.add_stats(&key);
        let ps = self.map.entry(key).or_default();
        let at = ps.partition_point(|&x| x < pos);
        ps.insert(at, pos);
        self.rows += 1;
    }

    /// Re-key the row at `pos` after an in-place UPDATE.
    pub fn update_row(&mut self, pos: usize, old: &Row, new: &Row) {
        let old_key = self.key_of(old);
        let new_key = self.key_of(new);
        if old_key == new_key {
            // Same key slot (total-order equality unifies e.g. Int 1 and
            // Real 1.0, which also share a TEXT-ness class): nothing moves.
            return;
        }
        if let Some(ps) = self.map.get_mut(&old_key) {
            if let Ok(i) = ps.binary_search(&pos) {
                ps.remove(i);
            }
            if ps.is_empty() {
                self.map.remove(&old_key);
            }
        }
        self.sub_stats(&old_key);
        self.add_stats(&new_key);
        let ps = self.map.entry(new_key).or_default();
        let at = ps.partition_point(|&x| x < pos);
        ps.insert(at, pos);
    }

    /// Range/point seek: emit every row **no consumed conjunct makes
    /// FALSE** (NULL keys stay in — the WHERE clause re-evaluates over
    /// the emitted rows and drops them itself). The consumed conjuncts
    /// are `eq` equality probes on the leading key columns plus an
    /// optional `range` probe on the next one, compared in the map's
    /// total order — callers gate on [`KeyColStats`] so that total-order
    /// outcomes equal SQL comparison outcomes.
    ///
    /// The kept keys fall into ≤ 4 contiguous key ranges: one per
    /// NULL/matching combination of the consumed positions, enumerated
    /// NULL-side first (NULL sorts first), so concatenation yields global
    /// key order. Skipped keys are grouped into outcome classes (which
    /// conjunct failed, and whether the earlier position was NULL or
    /// matching); [`OrdIndex::skip_reps`] hands the executor one
    /// representative per class to replay the baseline's per-row drop
    /// effects against.
    ///
    /// `dedup` is the `EqSeekMissesDuplicates` bug hook: an eq-only seek
    /// emits only the first posting of each key group.
    pub fn seek(
        &self,
        eq: &[Value],
        range: Option<(BinaryOp, Value)>,
        ordered: bool,
        reverse: bool,
        dedup: bool,
    ) -> SeekOut {
        let mut conjs: Vec<(BinaryOp, OrdValue)> = eq
            .iter()
            .map(|v| (BinaryOp::Eq, OrdValue(v.clone())))
            .collect();
        let dedup = dedup && range.is_none() && !eq.is_empty();
        if let Some((op, v)) = range {
            conjs.push((op, OrdValue(v)));
        }

        // Kept key groups, in global key order.
        let mut groups: Vec<(&Vec<OrdValue>, &Vec<usize>)> = Vec::new();
        let null = OrdValue(Value::Null);
        match conjs.len() {
            0 => groups.extend(self.map.iter()),
            1 => {
                self.null_segment(&[], &mut groups);
                self.match_segment(&[], conjs[0].0, &conjs[0].1, &mut groups);
            }
            2 => {
                let n0 = [null.clone()];
                let m0 = [conjs[0].1.clone()];
                self.null_segment(&n0, &mut groups);
                self.match_segment(&n0, conjs[1].0, &conjs[1].1, &mut groups);
                self.null_segment(&m0, &mut groups);
                self.match_segment(&m0, conjs[1].0, &conjs[1].1, &mut groups);
            }
            _ => unreachable!("a seek consumes at most two key columns"),
        }

        let postings = |ps: &Vec<usize>| -> Vec<usize> {
            if dedup {
                ps[..1].to_vec()
            } else {
                ps.clone()
            }
        };
        let emit: Vec<usize> = if ordered {
            if reverse {
                // DESC: key groups in reverse, storage order within each
                // group (a stable descending sort leaves ties in input
                // order).
                groups
                    .iter()
                    .rev()
                    .flat_map(|(_, ps)| postings(ps))
                    .collect()
            } else {
                groups.iter().flat_map(|(_, ps)| postings(ps)).collect()
            }
        } else {
            let mut ps: Vec<usize> = groups.iter().flat_map(|(_, ps)| postings(ps)).collect();
            ps.sort_unstable();
            ps
        };

        SeekOut { emit }
    }

    /// Skipped outcome classes for the probes of a [`OrdIndex::seek`]:
    /// one `(position, key)` entry per non-empty class, sorted by
    /// position. Evaluation is left-to-right with AND short-circuit at
    /// the first FALSE conjunct, so a class is the failing position plus
    /// the NULL/matching pattern before it.
    ///
    /// `lazy` picks **any** member per class (one bounded probe each)
    /// instead of the class's first row in storage order (a scan of the
    /// whole failing range). The executor replays representatives for
    /// their evaluation effects, which the within-class invariant makes
    /// member-independent; the exact storage position only matters on
    /// the fallible filter path, where replay order against fuel
    /// exhaustion is observable.
    pub fn skip_reps(
        &self,
        eq: &[Value],
        range: Option<(BinaryOp, Value)>,
        lazy: bool,
    ) -> Vec<(usize, Vec<OrdValue>)> {
        let mut conjs: Vec<(BinaryOp, OrdValue)> = eq
            .iter()
            .map(|v| (BinaryOp::Eq, OrdValue(v.clone())))
            .collect();
        if let Some((op, v)) = range {
            conjs.push((op, OrdValue(v)));
        }
        let null = OrdValue(Value::Null);
        let mut reps: Vec<(usize, Vec<OrdValue>)> = Vec::new();
        match conjs.len() {
            0 => {}
            1 => self.skip_class(&[], conjs[0].0, &conjs[0].1, lazy, &mut reps),
            2 => {
                self.skip_class(&[], conjs[0].0, &conjs[0].1, lazy, &mut reps);
                self.skip_class(&[null], conjs[1].0, &conjs[1].1, lazy, &mut reps);
                self.skip_class(
                    &[conjs[0].1.clone()],
                    conjs[1].0,
                    &conjs[1].1,
                    lazy,
                    &mut reps,
                );
            }
            _ => unreachable!("a seek consumes at most two key columns"),
        }
        reps.sort_by_key(|(p, _)| *p);
        reps
    }

    /// Keys whose position `prefix.len()` is NULL under the exact
    /// `prefix` (a contiguous range: NULL sorts first within the group).
    fn null_segment<'a>(
        &'a self,
        prefix: &[OrdValue],
        out: &mut Vec<(&'a Vec<OrdValue>, &'a Vec<usize>)>,
    ) {
        let j = prefix.len();
        let mut lo = prefix.to_vec();
        lo.push(OrdValue(Value::Null));
        for (k, ps) in self
            .map
            .range::<[OrdValue], _>((Included(&lo[..]), Unbounded))
        {
            if k[..j] != *prefix || !k[j].0.is_null() {
                break;
            }
            out.push((k, ps));
        }
    }

    /// Keys whose position `prefix.len()` is non-NULL and satisfies
    /// `<op> v` under the exact `prefix` (a contiguous range per op).
    fn match_segment<'a>(
        &'a self,
        prefix: &[OrdValue],
        op: BinaryOp,
        v: &OrdValue,
        out: &mut Vec<(&'a Vec<OrdValue>, &'a Vec<usize>)>,
    ) {
        use std::cmp::Ordering::*;
        let j = prefix.len();
        let mut lo = prefix.to_vec();
        match op {
            BinaryOp::Eq | BinaryOp::Ge | BinaryOp::Gt => {
                lo.push(v.clone());
                let bound = if op == BinaryOp::Gt {
                    Excluded(&lo[..])
                } else {
                    Included(&lo[..])
                };
                for (k, ps) in self.map.range::<[OrdValue], _>((bound, Unbounded)) {
                    if k[..j] != *prefix {
                        break;
                    }
                    match (op, k[j].cmp(v)) {
                        (BinaryOp::Eq, Equal) => out.push((k, ps)),
                        (BinaryOp::Eq, _) => break,
                        // `[v, suffix]` keys sort just above `[v]`: skip
                        // the probe's own group under a strict `>`.
                        (BinaryOp::Gt, Equal) => continue,
                        _ => out.push((k, ps)),
                    }
                }
            }
            BinaryOp::Lt | BinaryOp::Le => {
                lo.push(OrdValue(Value::Null));
                for (k, ps) in self
                    .map
                    .range::<[OrdValue], _>((Excluded(&lo[..]), Unbounded))
                {
                    if k[..j] != *prefix {
                        break;
                    }
                    if k[j].0.is_null() {
                        // `[prefix, NULL, suffix]` keys sort just above
                        // `[prefix, NULL]`.
                        continue;
                    }
                    match k[j].cmp(v) {
                        Less => out.push((k, ps)),
                        Equal if op == BinaryOp::Le => out.push((k, ps)),
                        _ => break,
                    }
                }
            }
            _ => unreachable!("non-comparison op in a seek"),
        }
    }

    /// Find, among keys with the exact `prefix` whose position
    /// `prefix.len()` is non-NULL and FAILS `<op> v`, the one owning the
    /// smallest storage position — the class's first row in a sequential
    /// scan. Walks only the failing side(s) of the probe.
    fn skip_class(
        &self,
        prefix: &[OrdValue],
        op: BinaryOp,
        v: &OrdValue,
        lazy: bool,
        out: &mut Vec<(usize, Vec<OrdValue>)>,
    ) {
        use std::cmp::Ordering::*;
        let j = prefix.len();
        let mut best: Option<(usize, &Vec<OrdValue>)> = None;
        fn consider<'m>(
            best: &mut Option<(usize, &'m Vec<OrdValue>)>,
            k: &'m Vec<OrdValue>,
            ps: &[usize],
        ) {
            // Safe: postings are never empty (empty groups are removed).
            let p = ps[0];
            if best.as_ref().is_none_or(|(bp, _)| p < *bp) {
                *best = Some((p, k));
            }
        }
        // Low side: non-NULL keys below the probe (the failing side for
        // Gt/Ge and the below-v half for Eq; empty for Lt/Le).
        if matches!(op, BinaryOp::Eq | BinaryOp::Gt | BinaryOp::Ge) {
            let mut lo = prefix.to_vec();
            lo.push(OrdValue(Value::Null));
            for (k, ps) in self
                .map
                .range::<[OrdValue], _>((Excluded(&lo[..]), Unbounded))
            {
                if k[..j] != *prefix {
                    break;
                }
                if k[j].0.is_null() {
                    continue;
                }
                match (k[j].cmp(v), op) {
                    (Less, _) => consider(&mut best, k, ps),
                    (Equal, BinaryOp::Gt) => consider(&mut best, k, ps),
                    _ => break,
                }
                if lazy {
                    break;
                }
            }
        }
        // High side: keys above the probe (the failing side for Lt/Le
        // and the above-v half for Eq; empty for Gt/Ge).
        if matches!(op, BinaryOp::Eq | BinaryOp::Lt | BinaryOp::Le) && !(lazy && best.is_some()) {
            let mut hi = prefix.to_vec();
            hi.push(v.clone());
            for (k, ps) in self
                .map
                .range::<[OrdValue], _>((Included(&hi[..]), Unbounded))
            {
                if k[..j] != *prefix {
                    break;
                }
                if k[j].cmp(v) == Equal && !matches!(op, BinaryOp::Lt) {
                    // `[v, suffix]` keys: still equal at position j, so
                    // they only fail a strict `<`.
                    continue;
                }
                consider(&mut best, k, ps);
                if lazy {
                    break;
                }
            }
        }
        if let Some((p, k)) = best {
            out.push((p, k.clone()));
        }
    }

    /// Unindex deleted rows and shift the surviving positions down.
    /// `removed` is sorted ascending; `old_rows` are the removed rows'
    /// pre-delete images (positions shift as the table compacts, so the
    /// whole posting set is rewritten in one pass).
    pub fn delete_rows(&mut self, removed: &[usize], old_rows: &[Row]) {
        if removed.is_empty() {
            return;
        }
        for row in old_rows {
            let key = self.key_of(row);
            self.sub_stats(&key);
        }
        self.map.retain(|_, ps| {
            ps.retain(|p| removed.binary_search(p).is_err());
            for p in ps.iter_mut() {
                *p -= removed.partition_point(|&x| x < *p);
            }
            !ps.is_empty()
        });
        self.rows -= removed.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ColumnDef;
    use crate::value::DataType;

    fn table(rows: Vec<Vec<Value>>) -> TableDef {
        TableDef {
            name: "t".into(),
            columns: vec![
                ColumnDef {
                    name: "a".into(),
                    ty: DataType::Int,
                    not_null: false,
                },
                ColumnDef {
                    name: "b".into(),
                    ty: DataType::Int,
                    not_null: false,
                },
            ],
            rows: rows.into_iter().map(Row::new).collect(),
        }
    }

    fn flat(idx: &OrdIndex) -> Vec<(Vec<Value>, Vec<usize>)> {
        idx.map
            .iter()
            .map(|(k, v)| (k.iter().map(|o| o.0.clone()).collect(), v.clone()))
            .collect()
    }

    #[test]
    fn build_orders_nulls_first_and_postings_ascending() {
        let t = table(vec![
            vec![Value::Int(2), Value::Int(0)],
            vec![Value::Null, Value::Int(0)],
            vec![Value::Int(1), Value::Int(0)],
            vec![Value::Int(2), Value::Int(1)],
        ]);
        let idx = OrdIndex::build(&t, vec![0]);
        assert_eq!(
            flat(&idx),
            vec![
                (vec![Value::Null], vec![1]),
                (vec![Value::Int(1)], vec![2]),
                (vec![Value::Int(2)], vec![0, 3]),
            ]
        );
        assert_eq!(idx.stats[0].nonnull, 3);
        assert_eq!(idx.stats[0].text, 0);
    }

    #[test]
    fn int_and_real_keys_unify_by_total_order() {
        let t = table(vec![
            vec![Value::Int(1), Value::Null],
            vec![Value::Real(1.0), Value::Null],
        ]);
        let idx = OrdIndex::build(&t, vec![0]);
        assert_eq!(idx.map.len(), 1);
        assert_eq!(idx.map.values().next().unwrap(), &vec![0, 1]);
    }

    #[test]
    fn update_moves_postings_and_stats() {
        let t = table(vec![
            vec![Value::Int(1), Value::Int(0)],
            vec![Value::Int(2), Value::Int(0)],
        ]);
        let mut idx = OrdIndex::build(&t, vec![0]);
        let old = t.rows[0].clone();
        let new = Row::new(vec![Value::Text("x".into()), Value::Int(0)]);
        idx.update_row(0, &old, &new);
        assert_eq!(
            flat(&idx),
            vec![
                (vec![Value::Int(2)], vec![1]),
                (vec![Value::Text("x".into())], vec![0]),
            ]
        );
        assert_eq!(idx.stats[0].text, 1);
        assert_eq!(idx.stats[0].nonnull, 2);
    }

    #[test]
    fn delete_shifts_surviving_positions() {
        let t = table(vec![
            vec![Value::Int(1), Value::Int(0)],
            vec![Value::Int(2), Value::Int(0)],
            vec![Value::Int(3), Value::Int(0)],
            vec![Value::Int(1), Value::Int(0)],
        ]);
        let mut idx = OrdIndex::build(&t, vec![0, 1]);
        let removed = vec![0, 2];
        let old_rows: Vec<Row> = removed.iter().map(|&i| t.rows[i].clone()).collect();
        idx.delete_rows(&removed, &old_rows);
        assert_eq!(idx.rows, 2);
        assert_eq!(
            flat(&idx),
            vec![
                (vec![Value::Int(1), Value::Int(0)], vec![1]),
                (vec![Value::Int(2), Value::Int(0)], vec![0]),
            ]
        );
    }
}
