//! Query planning.
//!
//! The planner lowers a [`Select`] AST into a [`SelectPlan`]: views are
//! expanded, CTE references resolved, and — when optimization is enabled —
//! three rewrites run:
//!
//! 1. **constant folding** of filter expressions (the very optimization the
//!    CODDTest oracle scrutinizes from the outside),
//! 2. **predicate pushdown** through inner/cross joins,
//! 3. **index selection** (forced by `INDEXED BY`, or chosen when a
//!    top-level conjunct matches an expression index).
//!
//! NoREC's reference execution runs with `optimize = false`, skipping all
//! three. [`fingerprint`] hashes the plan *shape* (operators, join kinds,
//! access paths, expression skeletons) — the "unique query plans" metric of
//! Table 3 and Figure 3.

use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};

use crate::ast::{
    BinaryOp, Expr, JoinKind, OrderItem, Select, SelectBody, SelectCore, SelectItem, SetOp,
    TableExpr,
};
use crate::bugs::{BugId, BugRegistry, IndexBugId};
use crate::catalog::{Catalog, RelationKind};
use crate::coverage::{pt, Coverage};
use crate::dialect::Dialect;
use crate::error::{Error, Result};
use crate::value::Value;

/// Planning context.
pub struct PlanCtx<'a> {
    pub catalog: &'a Catalog,
    pub dialect: Dialect,
    pub bugs: &'a BugRegistry,
    pub cov: &'a Coverage,
    pub optimize: bool,
}

/// Physical FROM-clause plan.
#[derive(Debug, Clone, PartialEq)]
pub enum FromPlan {
    /// Full scan of a base table in storage order.
    SeqScan { table: String, alias: String },
    /// Scan of a base table in index order (CoddDB indexes provide an
    /// ordering over an indexed expression; results are row-identical to a
    /// sequential scan but arrive in a different order).
    IndexScan {
        table: String,
        alias: String,
        index: String,
        reverse: bool,
    },
    /// Range/point seek on a physical ordered index (bare-column keys
    /// only). The executor probes the index's `OrdIndex` for the rows the
    /// consumed key prefix can reach; the *full* original WHERE clause is
    /// still evaluated over them, so consumed conjuncts stay in
    /// `CorePlan::where_clause` and the seek only has to be a superset-
    /// exact pre-filter (rows a consumed conjunct makes FALSE are the only
    /// ones it may skip). Unordered seeks emit rows in storage order;
    /// `ordered` seeks emit in index-key order and license the executor to
    /// skip the ORDER BY sort.
    IndexSeek {
        table: String,
        alias: String,
        /// Index name (lowercase catalog key).
        index: String,
        /// Equality-probe values for the leading key columns.
        eq: Vec<Value>,
        /// Optional range probe on the next key column.
        range: Option<(BinaryOp, Value)>,
        /// Emit in index-key order (sort elimination) instead of storage
        /// order.
        ordered: bool,
        /// With `ordered`: emit key groups in descending order (DESC).
        reverse: bool,
    },
    /// A derived table (or expanded view).
    Derived {
        plan: Box<SelectPlan>,
        alias: String,
        /// Optional output column renames (view / CTE column lists).
        columns: Vec<String>,
        /// True when this node came from expanding a view reference.
        from_view: bool,
    },
    /// Table value constructor.
    ValuesScan {
        rows: Vec<Vec<Expr>>,
        alias: String,
        columns: Vec<String>,
    },
    /// Reference to a materialized CTE.
    CteScan { name: String, alias: String },
    /// Join of two FROM subtrees. The executor picks the physical
    /// strategy: when `hash_keys` is non-empty it builds a hash table on
    /// the bound key ordinals (build side = right input) and probes it
    /// with the left input; otherwise — and whenever the key values mix
    /// storage classes in a way that breaks hash-key transitivity — it
    /// runs the classic nested loop over `on`.
    Join {
        kind: JoinKind,
        on: Option<Expr>,
        /// Equi-join key pairs recognized from the ON conjunction: each
        /// `(left, right)` expression reads only its own input side.
        /// Non-empty keys select the hash-join strategy in the executor.
        hash_keys: Vec<(Expr, Expr)>,
        /// ON conjuncts not covered by `hash_keys`, evaluated per
        /// key-matching candidate pair. Always `None` when `hash_keys`
        /// is empty (the executor then evaluates `on` itself).
        residual: Option<Expr>,
        left: Box<FromPlan>,
        right: Box<FromPlan>,
    },
    /// A filter pushed below its original position. `is_clause_root` is
    /// true when the pushed predicate is the *entire* original WHERE
    /// clause (it then still evaluates as the clause's top-level
    /// expression; fragments of a conjunction do not).
    Filtered {
        input: Box<FromPlan>,
        pred: Expr,
        is_clause_root: bool,
    },
}

/// Physical plan of one select core.
#[derive(Debug, Clone, PartialEq)]
pub struct CorePlan {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: Option<FromPlan>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
}

/// Physical plan of a select body.
#[allow(clippy::large_enum_variant)] // Core dominates; plans are built once per query
#[derive(Debug, Clone, PartialEq)]
pub enum BodyPlan {
    Core(CorePlan),
    SetOp {
        op: SetOp,
        all: bool,
        left: Box<BodyPlan>,
        right: Box<BodyPlan>,
    },
    Values(Vec<Vec<Expr>>),
}

/// Physical plan of a full SELECT.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectPlan {
    /// CTEs in definition order: (name, column renames, plan).
    pub ctes: Vec<(String, Vec<String>, SelectPlan)>,
    pub body: BodyPlan,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<Expr>,
    pub offset: Option<Expr>,
}

impl SelectPlan {
    /// Count join nodes in the whole plan (hang-bug trigger input).
    pub fn join_count(&self) -> usize {
        fn from_joins(f: &FromPlan) -> usize {
            match f {
                FromPlan::Join { left, right, .. } => 1 + from_joins(left) + from_joins(right),
                FromPlan::Filtered { input, .. } => from_joins(input),
                FromPlan::Derived { plan, .. } => plan.join_count(),
                _ => 0,
            }
        }
        fn body_joins(b: &BodyPlan) -> usize {
            match b {
                BodyPlan::Core(c) => c.from.as_ref().map(from_joins).unwrap_or(0),
                BodyPlan::SetOp { left, right, .. } => body_joins(left) + body_joins(right),
                BodyPlan::Values(_) => 0,
            }
        }
        body_joins(&self.body)
            + self
                .ctes
                .iter()
                .map(|(_, _, p)| p.join_count())
                .sum::<usize>()
    }
}

/// Plan a SELECT statement. `outer_ctes` holds the CTE names visible from
/// enclosing queries (their materialized values live in the executor's CTE
/// environment).
pub fn plan_select(
    select: &Select,
    pctx: &PlanCtx,
    outer_ctes: &BTreeSet<String>,
) -> Result<SelectPlan> {
    let mut visible = outer_ctes.clone();
    let mut ctes = Vec::with_capacity(select.with.len());
    for cte in &select.with {
        // A CTE body sees previously defined CTEs (non-recursive).
        let plan = plan_select(&cte.query, pctx, &visible)?;
        visible.insert(cte.name.to_ascii_lowercase());
        ctes.push((cte.name.to_ascii_lowercase(), cte.columns.clone(), plan));
    }
    let body = plan_body(&select.body, pctx, &visible)?;
    let mut plan = SelectPlan {
        ctes,
        body,
        order_by: select.order_by.clone(),
        limit: select.limit.clone(),
        offset: select.offset.clone(),
    };
    if pctx.optimize {
        eliminate_sort(&mut plan, pctx);
    }
    // Debug builds sweep the static verifier over every plan the engine
    // produces, so the whole test + fuzz corpus exercises it for free.
    // Clean engines only: mutant-corrupted plans are invalid by design,
    // and flagging them is the campaign oracle's job, not an assertion.
    #[cfg(debug_assertions)]
    if pctx.bugs.is_clean() {
        let violations = crate::validate::validate_plan(&plan, pctx.catalog);
        assert!(
            violations.is_empty(),
            "clean engine planned an invalid statement: {violations:?}"
        );
    }
    Ok(plan)
}

fn plan_body(body: &SelectBody, pctx: &PlanCtx, ctes: &BTreeSet<String>) -> Result<BodyPlan> {
    match body {
        SelectBody::Core(core) => Ok(BodyPlan::Core(plan_core(core, pctx, ctes)?)),
        SelectBody::SetOp {
            op,
            all,
            left,
            right,
        } => Ok(BodyPlan::SetOp {
            op: *op,
            all: *all,
            left: Box::new(plan_body(left, pctx, ctes)?),
            right: Box::new(plan_body(right, pctx, ctes)?),
        }),
        SelectBody::Values(rows) => {
            if rows.is_empty() {
                return Err(Error::Parse("VALUES requires at least one row".into()));
            }
            let arity = rows[0].len();
            if rows.iter().any(|r| r.len() != arity) {
                return Err(Error::Eval(
                    "all VALUES rows must have the same arity".into(),
                ));
            }
            Ok(BodyPlan::Values(rows.clone()))
        }
    }
}

fn plan_core(core: &SelectCore, pctx: &PlanCtx, ctes: &BTreeSet<String>) -> Result<CorePlan> {
    let mut from = match &core.from {
        Some(te) => Some(plan_table_expr(te, pctx, ctes)?),
        None => {
            pctx.cov.hit(pt::PLAN_NO_FROM);
            None
        }
    };

    let mut where_clause = core.where_clause.clone();
    let mut having = core.having.clone();

    if pctx.optimize {
        if let Some(w) = where_clause.take() {
            where_clause = Some(fold_expr(
                w,
                pctx,
                from.is_some() && has_join(from.as_ref()),
            )?);
        }
        if let Some(h) = having.take() {
            having = Some(fold_expr(h, pctx, has_join(from.as_ref()))?);
        }
        // Trivial-filter elimination. Strict dialects only treat BOOLEAN
        // literals as predicates; a numeric filter must still raise its
        // runtime type error, so it is never eliminated there.
        if let Some(Expr::Literal(v)) = &where_clause {
            let strict = pctx.dialect.strict_types();
            match v {
                Value::Bool(true) => {
                    pctx.cov.hit(pt::PLAN_FILTER_TRUE_ELIM);
                    where_clause = None;
                }
                Value::Int(1) if !strict => {
                    pctx.cov.hit(pt::PLAN_FILTER_TRUE_ELIM);
                    where_clause = None;
                }
                Value::Bool(false) | Value::Null => {
                    pctx.cov.hit(pt::PLAN_FILTER_FALSE);
                }
                Value::Int(0) if !strict => {
                    pctx.cov.hit(pt::PLAN_FILTER_FALSE);
                }
                _ => {}
            }
        }
        // Predicate pushdown through joins.
        if from.is_some() && where_clause.is_some() {
            let (new_from, residual) =
                push_down(from.take().unwrap(), where_clause.take().unwrap(), pctx);
            from = Some(new_from);
            where_clause = residual;
        }
        // Access-path selection on single-table scans: first try a
        // physical index seek over a sargable conjunct prefix, then the
        // legacy expression-index ordered scan.
        if let Some(f) = from.take() {
            let f = select_seek(f, where_clause.as_ref(), pctx);
            from = Some(select_index(f, where_clause.as_ref(), pctx)?);
        }
    }

    // INDEXED BY is honoured even without the optimizer (SQLite semantics:
    // it is a hard directive, and Listing 1's original query relies on it).
    if let Some(f) = from.take() {
        from = Some(force_indexed_by(f, pctx)?);
    }

    Ok(CorePlan {
        distinct: core.distinct,
        items: core.items.clone(),
        from,
        where_clause,
        group_by: core.group_by.clone(),
        having,
    })
}

/// Constant-fold a DML WHERE predicate (UPDATE/DELETE go through the same
/// folding pass as SELECT filters in a real planner).
pub fn fold_dml_predicate(expr: Expr, pctx: &PlanCtx) -> Result<Expr> {
    fold_expr(expr, pctx, false)
}

fn has_join(from: Option<&FromPlan>) -> bool {
    fn rec(f: &FromPlan) -> bool {
        match f {
            FromPlan::Join { .. } => true,
            FromPlan::Filtered { input, .. } => rec(input),
            _ => false,
        }
    }
    from.map(rec).unwrap_or(false)
}

fn plan_table_expr(te: &TableExpr, pctx: &PlanCtx, ctes: &BTreeSet<String>) -> Result<FromPlan> {
    match te {
        TableExpr::Named {
            name,
            alias,
            indexed_by,
        } => {
            let key = name.to_ascii_lowercase();
            let alias_name = alias
                .clone()
                .unwrap_or_else(|| name.clone())
                .to_ascii_lowercase();
            if ctes.contains(&key) {
                pctx.cov.hit(pt::PLAN_CTE_SCAN);
                if indexed_by.is_some() {
                    return Err(Error::Catalog(format!(
                        "cannot use INDEXED BY on CTE {name}"
                    )));
                }
                return Ok(FromPlan::CteScan {
                    name: key,
                    alias: alias_name,
                });
            }
            match pctx.catalog.resolve_relation(name)? {
                RelationKind::Table => {
                    pctx.cov.hit(pt::PLAN_SEQ_SCAN);
                    let mut plan = FromPlan::SeqScan {
                        table: key.clone(),
                        alias: alias_name.clone(),
                    };
                    if let Some(idx) = indexed_by {
                        // Validated/applied in force_indexed_by; keep the
                        // directive by eagerly resolving it here.
                        let index = pctx
                            .catalog
                            .index(idx)
                            .ok_or_else(|| Error::Catalog(format!("no such index: {idx}")))?;
                        if !index.table.eq_ignore_ascii_case(name) {
                            return Err(Error::Catalog(format!(
                                "index {idx} does not belong to table {name}"
                            )));
                        }
                        pctx.cov.hit(pt::PLAN_INDEX_FORCED);
                        plan = FromPlan::IndexScan {
                            table: key,
                            alias: alias_name,
                            index: idx.to_ascii_lowercase(),
                            reverse: false,
                        };
                    }
                    Ok(plan)
                }
                RelationKind::View => {
                    pctx.cov.hit(pt::PLAN_VIEW_EXPAND);
                    if indexed_by.is_some() {
                        return Err(Error::Catalog(format!(
                            "cannot use INDEXED BY on view {name}"
                        )));
                    }
                    let view = pctx.catalog.view(name).expect("resolved as view");
                    let sub = plan_select(&view.query, pctx, &BTreeSet::new())?;
                    Ok(FromPlan::Derived {
                        plan: Box::new(sub),
                        alias: alias_name,
                        columns: view.columns.clone(),
                        from_view: true,
                    })
                }
            }
        }
        TableExpr::Derived { query, alias } => {
            pctx.cov.hit(pt::PLAN_DERIVED);
            let sub = plan_select(query, pctx, ctes)?;
            Ok(FromPlan::Derived {
                plan: Box::new(sub),
                alias: alias.to_ascii_lowercase(),
                columns: Vec::new(),
                from_view: false,
            })
        }
        TableExpr::Values {
            rows,
            alias,
            columns,
        } => {
            pctx.cov.hit(pt::PLAN_VALUES_SCAN);
            if rows.is_empty() {
                return Err(Error::Parse("VALUES requires at least one row".into()));
            }
            let arity = rows[0].len();
            if rows.iter().any(|r| r.len() != arity) {
                return Err(Error::Eval(
                    "all VALUES rows must have the same arity".into(),
                ));
            }
            Ok(FromPlan::ValuesScan {
                rows: rows.clone(),
                alias: alias.to_ascii_lowercase(),
                columns: columns.iter().map(|c| c.to_ascii_lowercase()).collect(),
            })
        }
        TableExpr::Join {
            left,
            right,
            kind,
            on,
        } => {
            pctx.cov.hit(match kind {
                JoinKind::Inner => pt::PLAN_JOIN_INNER,
                JoinKind::Left => pt::PLAN_JOIN_LEFT,
                JoinKind::Right => pt::PLAN_JOIN_RIGHT,
                JoinKind::Full => pt::PLAN_JOIN_FULL,
                JoinKind::Cross => pt::PLAN_JOIN_CROSS,
            });
            let left = Box::new(plan_table_expr(left, pctx, ctes)?);
            let right = Box::new(plan_table_expr(right, pctx, ctes)?);
            // Equi-key recognition runs with and without the optimizer:
            // the hash join is an execution strategy with semantics
            // identical to the nested loop, so NoREC's unoptimized
            // reference execution must take the same path.
            let (hash_keys, residual) = match on {
                Some(pred) => recognize_hash_join(pred, &left, &right, pctx),
                None => (Vec::new(), None),
            };
            Ok(FromPlan::Join {
                kind: *kind,
                on: on.clone(),
                hash_keys,
                residual,
                left,
                right,
            })
        }
    }
}

/// Re-apply `INDEXED BY` on plans built without optimization (it is part
/// of query semantics in SQLite, not an optimizer decision). A no-op for
/// plans where index selection already ran.
fn force_indexed_by(plan: FromPlan, _pctx: &PlanCtx) -> Result<FromPlan> {
    Ok(plan)
}

// ---------------------------------------------------------------------------
// Constant folding
// ---------------------------------------------------------------------------

/// Fold constant sub-expressions of a filter expression. Mirrors the very
/// optimization CODDTest emulates from the outside.
fn fold_expr(expr: Expr, pctx: &PlanCtx, in_join_query: bool) -> Result<Expr> {
    // Bug hook: CockroachConstFoldNotBetweenNull — the optimizer "folds"
    // a NOT BETWEEN with a NULL bound to TRUE in join queries, although the
    // expression is not constant at all.
    if pctx.bugs.active(BugId::CockroachConstFoldNotBetweenNull) && in_join_query {
        if let Expr::Between {
            negated: true,
            low,
            high,
            ..
        } = &expr
        {
            let null_bound = matches!(low.as_ref(), Expr::Literal(Value::Null))
                || matches!(high.as_ref(), Expr::Literal(Value::Null));
            if null_bound {
                return Ok(Expr::Literal(truthy_literal(pctx.dialect)));
            }
        }
    }
    // Bug hook: CockroachInternalNegMod — folding `x % -k` raises an
    // internal error.
    if pctx.bugs.active(BugId::CockroachInternalNegMod) {
        if let Expr::Binary {
            op: BinaryOp::Mod,
            right,
            ..
        } = &expr
        {
            if matches!(right.as_ref(), Expr::Literal(Value::Int(k)) if *k < 0) {
                return Err(Error::Internal(
                    "constant folding of % with negative modulus".into(),
                ));
            }
        }
    }

    // Bug hook companion: the Listing-9 mutant's planner cannot lower IN
    // value lists with INT8-range members, so it skips constant-folding
    // any subtree containing an IN list — keeping plan-time and run-time
    // behaviour consistent (NoREC therefore sees no asymmetry).
    if pctx.bugs.active(BugId::CockroachInBigIntValueList) && contains_in_list(&expr) {
        pctx.cov.hit(pt::PLAN_FOLD_SKIPPED);
        return map_children(expr, &mut |child| fold_expr(child, pctx, in_join_query));
    }

    if expr.is_constant() {
        match crate::eval::eval_const(&expr, pctx) {
            Ok(v) => {
                pctx.cov.hit(pt::PLAN_FOLD_CONST);
                return Ok(Expr::Literal(v));
            }
            Err(e) if e.severity() == crate::error::Severity::BugSignal => return Err(e),
            Err(_) => {
                // Expressions that error at fold time (overflow, strict type
                // mismatch, ...) are left for runtime, like real planners do.
                pctx.cov.hit(pt::PLAN_FOLD_SKIPPED);
                return Ok(expr);
            }
        }
    }
    // Recurse into children (not into subqueries: they are planned lazily).
    map_children(expr, &mut |child| fold_expr(child, pctx, in_join_query))
}

fn contains_in_list(expr: &Expr) -> bool {
    let mut found = false;
    crate::ast::visit::walk_expr_shallow(expr, &mut |e| {
        if matches!(e, Expr::InList { .. }) {
            found = true;
        }
    });
    found
}

fn truthy_literal(dialect: Dialect) -> Value {
    if dialect.strict_types() {
        Value::Bool(true)
    } else {
        Value::Int(1)
    }
}

/// Rebuild an expression by transforming each immediate child.
fn map_children(expr: Expr, f: &mut impl FnMut(Expr) -> Result<Expr>) -> Result<Expr> {
    Ok(match expr {
        Expr::Unary { op, expr } => Expr::Unary {
            op,
            expr: Box::new(f(*expr)?),
        },
        Expr::Binary { op, left, right } => Expr::Binary {
            op,
            left: Box::new(f(*left)?),
            right: Box::new(f(*right)?),
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(f(*expr)?),
            low: Box::new(f(*low)?),
            high: Box::new(f(*high)?),
            negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(f(*expr)?),
            list: list.into_iter().map(&mut *f).collect::<Result<_>>()?,
            negated,
        },
        Expr::Case {
            operand,
            whens,
            else_expr,
        } => Expr::Case {
            operand: match operand {
                Some(o) => Some(Box::new(f(*o)?)),
                None => None,
            },
            whens: whens
                .into_iter()
                .map(|(w, t)| Ok::<_, Error>((f(w)?, f(t)?)))
                .collect::<Result<_>>()?,
            else_expr: match else_expr {
                Some(e) => Some(Box::new(f(*e)?)),
                None => None,
            },
        },
        Expr::Func { func, args } => Expr::Func {
            func,
            args: args.into_iter().map(&mut *f).collect::<Result<_>>()?,
        },
        Expr::Cast { expr, ty } => Expr::Cast {
            expr: Box::new(f(*expr)?),
            ty,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(f(*expr)?),
            negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(f(*expr)?),
            pattern: Box::new(f(*pattern)?),
            negated,
        },
        // Leaves and subquery holders are returned unchanged.
        other @ (Expr::Literal(_)
        | Expr::Column(_)
        | Expr::InSubquery { .. }
        | Expr::Exists { .. }
        | Expr::Scalar(_)
        | Expr::Quantified { .. }
        | Expr::Agg { .. }) => other,
    })
}

// ---------------------------------------------------------------------------
// Equi-join recognition
// ---------------------------------------------------------------------------

/// Split an ON predicate into hash-join key pairs plus a residual.
///
/// A conjunct `l = r` becomes a key pair when one side reads only the
/// left input's aliases and the other only the right input's (sides are
/// swapped into `(left, right)` order; equality is symmetric). Constant
/// sides qualify too — they hash to a single bucket, which is still
/// correct. Conjuncts with subqueries, aggregates or bare column
/// references stay in the residual, evaluated per key-matching pair.
///
/// Skip-exactness: the hash join never evaluates the residual on pairs
/// whose keys mismatch, so it must be provable that the nested loop
/// would not have evaluated it (and hence surfaced its errors or
/// subquery side effects) either. AND short-circuits only on FALSE, in
/// conjunct order — therefore key recognition stops at the first
/// residual conjunct (keys form a prefix: a false key short-circuits
/// everything after it), residuals containing subqueries veto the
/// rewrite entirely, and the executor falls back at runtime when a
/// residual coexists with NULL key values (a NULL key does not
/// short-circuit, so the nested loop would still reach the residual).
fn recognize_hash_join(
    on: &Expr,
    left: &FromPlan,
    right: &FromPlan,
    pctx: &PlanCtx,
) -> (Vec<(Expr, Expr)>, Option<Expr>) {
    let mut left_aliases = BTreeSet::new();
    let mut right_aliases = BTreeSet::new();
    collect_aliases(left, &mut left_aliases);
    collect_aliases(right, &mut right_aliases);
    // An alias visible on both sides makes side attribution ambiguous
    // (the nested loop's combined-schema binding would reject such a
    // reference; per-side binding would silently pick one) — bail out.
    if !left_aliases.is_disjoint(&right_aliases) {
        return (Vec::new(), None);
    }

    let mut keys = Vec::new();
    let mut rest = Vec::new();
    for conj in split_conjuncts(on) {
        // Keys must form a prefix of the conjunction (see doc comment).
        if rest.is_empty() {
            if let Expr::Binary {
                op: BinaryOp::Eq,
                left: l,
                right: r,
            } = &conj
            {
                if refers_only_to(l, &left_aliases) && refers_only_to(r, &right_aliases) {
                    keys.push((l.as_ref().clone(), r.as_ref().clone()));
                    continue;
                }
                if refers_only_to(l, &right_aliases) && refers_only_to(r, &left_aliases) {
                    keys.push((r.as_ref().clone(), l.as_ref().clone()));
                    continue;
                }
            }
        }
        rest.push(conj);
    }
    if keys.is_empty() || rest.iter().any(|e| e.contains_subquery()) {
        return (Vec::new(), None);
    }
    pctx.cov.hit(pt::PLAN_HASH_JOIN);
    (keys, conjoin(rest))
}

// ---------------------------------------------------------------------------
// Predicate pushdown
// ---------------------------------------------------------------------------

/// Split a predicate into top-level conjuncts.
pub fn split_conjuncts(expr: &Expr) -> Vec<Expr> {
    match expr {
        Expr::Binary {
            op: BinaryOp::And,
            left,
            right,
        } => {
            let mut out = split_conjuncts(left);
            out.extend(split_conjuncts(right));
            out
        }
        other => vec![other.clone()],
    }
}

pub(crate) fn conjoin(parts: Vec<Expr>) -> Option<Expr> {
    let mut it = parts.into_iter();
    let first = it.next()?;
    Some(it.fold(first, Expr::and))
}

/// Aliases produced by a FROM subtree.
pub(crate) fn collect_aliases(plan: &FromPlan, out: &mut BTreeSet<String>) {
    match plan {
        FromPlan::SeqScan { alias, .. }
        | FromPlan::IndexScan { alias, .. }
        | FromPlan::IndexSeek { alias, .. }
        | FromPlan::Derived { alias, .. }
        | FromPlan::ValuesScan { alias, .. }
        | FromPlan::CteScan { alias, .. } => {
            out.insert(alias.clone());
        }
        FromPlan::Join { left, right, .. } => {
            collect_aliases(left, out);
            collect_aliases(right, out);
        }
        FromPlan::Filtered { input, .. } => collect_aliases(input, out),
    }
}

/// Can a conjunct be evaluated using only the given aliases? Conservative:
/// bare (unqualified) column references and subqueries block pushdown.
pub(crate) fn refers_only_to(expr: &Expr, aliases: &BTreeSet<String>) -> bool {
    if expr.contains_subquery() || expr.contains_aggregate() {
        return false;
    }
    expr.shallow_column_refs().iter().all(|c| match &c.table {
        Some(t) => aliases.contains(&t.to_ascii_lowercase()),
        None => false,
    })
}

/// Push WHERE conjuncts below joins where legal (inner/cross only —
/// pushing below the preserved side of an outer join changes semantics).
/// The `DuckdbPushdownLeftJoin` mutant "also" pushes below the null-padded
/// right side of a LEFT JOIN, which is exactly the illegal rewrite.
fn push_down(from: FromPlan, where_clause: Expr, pctx: &PlanCtx) -> (FromPlan, Option<Expr>) {
    let FromPlan::Join {
        kind,
        on,
        hash_keys,
        residual,
        left,
        right,
    } = from
    else {
        return (from, Some(where_clause));
    };

    let mut left_aliases = BTreeSet::new();
    let mut right_aliases = BTreeSet::new();
    collect_aliases(&left, &mut left_aliases);
    collect_aliases(&right, &mut right_aliases);

    let mut left_preds = Vec::new();
    let mut right_preds = Vec::new();
    let mut residual_preds = Vec::new();

    let push_left_legal = matches!(kind, JoinKind::Inner | JoinKind::Cross);
    let conjuncts = split_conjuncts(&where_clause);
    let whole_clause = conjuncts.len() == 1;

    for conj in conjuncts {
        // The buggy LEFT-JOIN pushdown pattern-matches simple predicates;
        // CASE expressions escape it (so the CODDTest folded query stays
        // correct while the original is corrupted).
        let push_right_legal = matches!(kind, JoinKind::Inner | JoinKind::Cross)
            || (kind == JoinKind::Left
                && pctx.bugs.active(BugId::DuckdbPushdownLeftJoin)
                && !matches!(conj, Expr::Case { .. }));
        if push_left_legal && refers_only_to(&conj, &left_aliases) {
            pctx.cov.hit(pt::PLAN_PUSHDOWN_APPLIED);
            left_preds.push(conj);
        } else if push_right_legal && refers_only_to(&conj, &right_aliases) {
            pctx.cov.hit(pt::PLAN_PUSHDOWN_APPLIED);
            right_preds.push(conj);
        } else {
            if !matches!(kind, JoinKind::Inner | JoinKind::Cross)
                && (refers_only_to(&conj, &left_aliases) || refers_only_to(&conj, &right_aliases))
            {
                pctx.cov.hit(pt::PLAN_PUSHDOWN_BLOCKED_OUTER);
            }
            residual_preds.push(conj);
        }
    }

    let left = match conjoin(left_preds) {
        Some(p) => Box::new(FromPlan::Filtered {
            input: left,
            pred: p,
            is_clause_root: whole_clause,
        }),
        None => left,
    };
    let right = match conjoin(right_preds) {
        Some(p) => Box::new(FromPlan::Filtered {
            input: right,
            pred: p,
            is_clause_root: whole_clause,
        }),
        None => right,
    };
    (
        FromPlan::Join {
            kind,
            on,
            hash_keys,
            residual,
            left,
            right,
        },
        conjoin(residual_preds),
    )
}

// ---------------------------------------------------------------------------
// Index seek selection and sort elimination
// ---------------------------------------------------------------------------

/// Maximum key columns a seek consumes (a leading run of equality probes
/// with one optional trailing range probe).
pub(crate) const MAX_SEEK_KEYS: usize = 2;

/// Mutants whose trigger shapes run through the legacy indexed paths (or
/// through correlated-name planning): seek selection must not reroute
/// them, so it stands down entirely while any is active.
fn seek_gated(pctx: &PlanCtx) -> bool {
    pctx.bugs.active(BugId::SqliteAggSubqueryIndexedWhere)
        || pctx.bugs.active(BugId::SqliteIndexedCmpNullTrue)
        || pctx.bugs.active(BugId::SqliteInternalConcatIndexedExpr)
        || pctx.bugs.active(BugId::TidbCorrelatedNameCollision)
}

/// A sargable conjunct: `col <cmp> non-NULL-literal` (either operand
/// order) over a bare or `alias`-qualified column. Returns the lowercase
/// column name, the comparison normalized to column-on-the-left, and the
/// probe literal.
pub(crate) fn sargable(conj: &Expr, alias: &str) -> Option<(String, BinaryOp, Value)> {
    let Expr::Binary { op, left, right } = conj else {
        return None;
    };
    if !matches!(
        op,
        BinaryOp::Eq | BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge
    ) {
        return None;
    }
    let col_of = |e: &Expr| -> Option<String> {
        let Expr::Column(c) = e else { return None };
        match c.table.as_deref() {
            Some(t) if !t.eq_ignore_ascii_case(alias) => None,
            _ => Some(c.column.to_ascii_lowercase()),
        }
    };
    let flip = |op: BinaryOp| match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::Le => BinaryOp::Ge,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::Ge => BinaryOp::Le,
        other => other,
    };
    match (left.as_ref(), right.as_ref()) {
        (col @ Expr::Column(_), Expr::Literal(v)) if !v.is_null() => {
            Some((col_of(col)?, *op, v.clone()))
        }
        (Expr::Literal(v), col @ Expr::Column(_)) if !v.is_null() => {
            Some((col_of(col)?, flip(*op), v.clone()))
        }
        _ => None,
    }
}

/// Turn a bare single-table scan into an [`FromPlan::IndexSeek`] when a
/// *prefix* of the WHERE conjuncts probes a physical index's leading key
/// columns. Only a prefix qualifies: the executor's coverage/fuel replay
/// for skipped rows relies on every conjunct *before* the failing one
/// reading key columns only. The consumed conjuncts stay in the WHERE
/// clause — the seek is a pre-filter, not a substitute.
fn select_seek(plan: FromPlan, where_clause: Option<&Expr>, pctx: &PlanCtx) -> FromPlan {
    if seek_gated(pctx) {
        return plan;
    }
    let FromPlan::SeqScan { table, alias } = &plan else {
        return plan;
    };
    let Some(filter) = where_clause else {
        return plan;
    };
    let Ok(t) = pctx.catalog.table(table) else {
        return plan;
    };
    let conjs = split_conjuncts(filter);
    // (consumed conjuncts, index name, eq-prefix values, trailing range)
    type SeekCandidate = (usize, String, Vec<Value>, Option<(BinaryOp, Value)>);
    let mut best: Option<SeekCandidate> = None;
    for index in pctx.catalog.indexes_for_table(table) {
        let Some(data) = &index.data else { continue };
        let mut eq = Vec::new();
        let mut range = None;
        for conj in conjs.iter().take(MAX_SEEK_KEYS) {
            let Some((col, op, v)) = sargable(conj, alias) else {
                break;
            };
            let Some(&key_col) = data.cols.get(eq.len()) else {
                break;
            };
            if !t.columns[key_col].name.eq_ignore_ascii_case(&col) {
                break;
            }
            if op == BinaryOp::Eq {
                eq.push(v);
            } else {
                // Bug hook: RangeBoundOffByOne — the planner tightens
                // inclusive range bounds to exclusive while building the
                // seek, so the corrupted bound is visible in the plan tree
                // (the WHERE clause keeps the original operator).
                let op = if pctx.bugs.index_active(IndexBugId::RangeBoundOffByOne) {
                    match op {
                        BinaryOp::Ge => BinaryOp::Gt,
                        BinaryOp::Le => BinaryOp::Lt,
                        o => o,
                    }
                } else {
                    op
                };
                range = Some((op, v));
                break;
            }
        }
        let consumed = eq.len() + usize::from(range.is_some());
        // Best = most consumed key columns; ties go to the first index in
        // name order (the catalog iterates name-ascending).
        if consumed > 0 && best.as_ref().is_none_or(|(c, ..)| consumed > *c) {
            best = Some((consumed, index.name.to_ascii_lowercase(), eq, range));
        }
    }
    match best {
        Some((_, index, eq, range)) => {
            pctx.cov.hit(pt::PLAN_INDEX_SEEK);
            FromPlan::IndexSeek {
                table: table.clone(),
                alias: alias.clone(),
                index,
                eq,
                range,
                ordered: false,
                reverse: false,
            }
        }
        None => plan,
    }
}

/// Satisfy ORDER BY via an ordered index seek when the emission order
/// provably equals the sorted order: single-core body, no grouping or
/// aggregation, plain bare-column output items, ORDER BY naming the
/// *full* key column list of the access path's index in order with one
/// uniform direction, and no residual WHERE work beyond the seek's
/// consumed conjuncts (index-order emission changes the row evaluation
/// order, which an erroring residual conjunct could observe).
fn eliminate_sort(plan: &mut SelectPlan, pctx: &PlanCtx) {
    if plan.order_by.is_empty() || seek_gated(pctx) {
        return;
    }
    let BodyPlan::Core(core) = &mut plan.body else {
        return;
    };
    if !core.group_by.is_empty()
        || core.having.is_some()
        || core.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            _ => false,
        })
    {
        return;
    }
    let desc = plan.order_by[0].order == crate::ast::SortOrder::Desc;
    if plan
        .order_by
        .iter()
        .any(|o| (o.order == crate::ast::SortOrder::Desc) != desc)
    {
        return;
    }
    // Every sort key must be a bare, unqualified column (the executor's
    // sort then resolves it by output name — no expression evaluation,
    // which could consume coverage the eliminated path would miss).
    let mut key_names = Vec::with_capacity(plan.order_by.len());
    for o in &plan.order_by {
        match &o.expr {
            Expr::Column(c) if c.table.is_none() => key_names.push(c.column.clone()),
            _ => return,
        }
    }
    // The access path: an existing seek whose WHERE is fully consumed, or
    // a bare scan with no WHERE at all (upgraded to a full-range seek).
    let table = match core.from.as_ref() {
        Some(FromPlan::IndexSeek {
            table, eq, range, ..
        }) => {
            let consumed = eq.len() + usize::from(range.is_some());
            let total = core
                .where_clause
                .as_ref()
                .map(|w| split_conjuncts(w).len())
                .unwrap_or(0);
            if consumed != total {
                return;
            }
            table.clone()
        }
        Some(FromPlan::SeqScan { table, .. }) => {
            if core.where_clause.is_some() {
                return;
            }
            table.clone()
        }
        _ => return,
    };
    let Ok(t) = pctx.catalog.table(&table) else {
        return;
    };
    // The output-name table the executor's sort resolves against, each
    // name mapped to its underlying storage column ordinal.
    let outputs: Vec<(&str, usize)> =
        if core.items.len() == 1 && matches!(core.items[0], SelectItem::Wildcard) {
            t.columns
                .iter()
                .enumerate()
                .map(|(i, c)| (c.name.as_str(), i))
                .collect()
        } else {
            let mut out = Vec::with_capacity(core.items.len());
            for item in &core.items {
                let SelectItem::Expr { expr, alias } = item else {
                    return;
                };
                let Expr::Column(c) = expr else { return };
                if c.table.is_some() {
                    return;
                }
                let Some(ord) = t.column_index(&c.column) else {
                    return;
                };
                out.push((alias.as_deref().unwrap_or(c.column.as_str()), ord));
            }
            out
        };
    // Resolve each ORDER BY name exactly as the executor's sort does:
    // first case-insensitive output-name match.
    let mut ordinals = Vec::with_capacity(key_names.len());
    for name in &key_names {
        let Some((_, ord)) = outputs.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)) else {
            return;
        };
        ordinals.push(*ord);
    }
    match core.from.as_mut() {
        Some(FromPlan::IndexSeek {
            index,
            ordered,
            reverse,
            ..
        }) => {
            let cols_match = pctx
                .catalog
                .index(index)
                .and_then(|i| i.data.as_ref())
                .is_some_and(|d| d.cols == ordinals);
            if !cols_match {
                return;
            }
            *ordered = true;
            // Bug hook: SortElimWrongDirection — the planner eliminates a
            // DESC sort but records an ascending seek, so the wrong
            // direction is visible in the plan tree.
            *reverse = desc && !pctx.bugs.index_active(IndexBugId::SortElimWrongDirection);
            pctx.cov.hit(pt::PLAN_SORT_ELIM);
        }
        Some(from @ FromPlan::SeqScan { .. }) => {
            let chosen = pctx
                .catalog
                .indexes_for_table(&table)
                .into_iter()
                .find(|i| i.data.as_ref().is_some_and(|d| d.cols == ordinals));
            let Some(idx) = chosen else { return };
            let FromPlan::SeqScan { alias, .. } = &*from else {
                unreachable!()
            };
            *from = FromPlan::IndexSeek {
                table: table.clone(),
                alias: alias.clone(),
                index: idx.name.to_ascii_lowercase(),
                eq: Vec::new(),
                range: None,
                ordered: true,
                // Bug hook: SortElimWrongDirection (see the seek arm above).
                reverse: desc && !pctx.bugs.index_active(IndexBugId::SortElimWrongDirection),
            };
            pctx.cov.hit(pt::PLAN_INDEX_SEEK);
            pctx.cov.hit(pt::PLAN_SORT_ELIM);
        }
        _ => {}
    }
}

// ---------------------------------------------------------------------------
// Index selection
// ---------------------------------------------------------------------------

/// Choose an index scan for a bare single-table FROM when a top-level
/// WHERE conjunct matches one of the table's expression indexes.
fn select_index(plan: FromPlan, where_clause: Option<&Expr>, pctx: &PlanCtx) -> Result<FromPlan> {
    let FromPlan::SeqScan { table, alias } = &plan else {
        return Ok(plan);
    };
    let Some(filter) = where_clause else {
        return Ok(plan);
    };
    for conj in split_conjuncts(filter) {
        for index in pctx.catalog.indexes_for_table(table) {
            if let Some(reverse) = index_matches(&conj, &index.exprs[0], alias) {
                pctx.cov.hit(pt::PLAN_INDEX_SCAN);
                return Ok(FromPlan::IndexScan {
                    table: table.clone(),
                    alias: alias.clone(),
                    index: index.name.to_ascii_lowercase(),
                    reverse,
                });
            }
        }
    }
    Ok(plan)
}

/// Does a conjunct make the given index usable? Returns the scan direction
/// (descending for `>`/`>=` probes) or `None`.
fn index_matches(conj: &Expr, index_expr: &Expr, alias: &str) -> Option<bool> {
    let norm = normalize_for_index(conj, alias);
    let idx = normalize_for_index(index_expr, alias);
    // Whole-expression match: the conjunct *is* the indexed expression.
    if norm == idx {
        return Some(false);
    }
    // Column-probe match: `col op literal` against an index on `col`.
    if let Expr::Binary { op, left, right } = &norm {
        if op.is_comparison()
            && matches!(left.as_ref(), Expr::Column(_))
            && matches!(right.as_ref(), Expr::Literal(_))
            && *left.as_ref() == idx
        {
            return Some(matches!(op, BinaryOp::Gt | BinaryOp::Ge));
        }
    }
    None
}

/// Strip table qualifiers equal to `alias` so index expressions (stored
/// with bare columns) compare structurally with query predicates.
fn normalize_for_index(expr: &Expr, alias: &str) -> Expr {
    let mut e = expr.clone();
    fn rec(e: &mut Expr, alias: &str) {
        if let Expr::Column(c) = e {
            if c.table
                .as_deref()
                .is_some_and(|t| t.eq_ignore_ascii_case(alias))
            {
                c.table = None;
            }
            c.column = c.column.to_ascii_lowercase();
            return;
        }
        // Reuse the mutable child traversal from `visit` via a small local
        // match to avoid exposing it publicly.
        match e {
            Expr::Unary { expr, .. } => rec(expr, alias),
            Expr::Binary { left, right, .. } => {
                rec(left, alias);
                rec(right, alias);
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                rec(expr, alias);
                rec(low, alias);
                rec(high, alias);
            }
            Expr::InList { expr, list, .. } => {
                rec(expr, alias);
                for i in list {
                    rec(i, alias);
                }
            }
            Expr::Case {
                operand,
                whens,
                else_expr,
            } => {
                if let Some(o) = operand {
                    rec(o, alias);
                }
                for (w, t) in whens {
                    rec(w, alias);
                    rec(t, alias);
                }
                if let Some(el) = else_expr {
                    rec(el, alias);
                }
            }
            Expr::Func { args, .. } => {
                for a in args {
                    rec(a, alias);
                }
            }
            Expr::Cast { expr, .. } | Expr::IsNull { expr, .. } => rec(expr, alias),
            Expr::Like { expr, pattern, .. } => {
                rec(expr, alias);
                rec(pattern, alias);
            }
            _ => {}
        }
    }
    rec(&mut e, alias);
    e
}

// ---------------------------------------------------------------------------
// EXPLAIN
// ---------------------------------------------------------------------------

/// Render a plan as an indented operator tree (the engine's `EXPLAIN`
/// output). The text intentionally shows what the fingerprint hashes:
/// access paths, join kinds, aggregation and subplan structure.
pub fn explain(plan: &SelectPlan) -> String {
    explain_with_memo(plan, true, None)
}

/// How EXPLAIN annotates clause vectorization.
#[derive(Clone, Copy)]
pub enum VecNote<'a> {
    /// No vectorization annotations (bare [`explain`]).
    Off,
    /// Vectorized evaluation disabled wholesale (per-row bind mode or
    /// [`crate::exec::EvalMode::RowAtATime`]); every clause annotates
    /// `ROW(<reason>)`.
    Disabled(&'static str),
    /// Classify each clause expression against the active mutant set —
    /// the static mirror of [`crate::vec_eval::classify`]. Runtime
    /// conditions (erroring lanes, fuel exhaustion) can still fall back
    /// per chunk; the annotation is the planner's prediction.
    Predict {
        bugs: &'a BugRegistry,
        dialect: Dialect,
    },
}

/// How EXPLAIN renders: whether subquery memoization is enabled (the
/// `BindMode::PerRow` baseline bypasses every cache and annotates
/// `NONE`), the catalog — when present, bare column references
/// classify against the actual columns of the subquery's relations —
/// and the vectorization annotation mode.
#[derive(Clone, Copy)]
struct ExplainCtx<'a> {
    memo: bool,
    catalog: Option<&'a Catalog>,
    vec: VecNote<'a>,
}

/// [`explain`], annotating every subquery with its predicted result-memo
/// strategy (`MEMO(full)` / `MEMO(keyed: n slots)` / `NONE`). The
/// prediction is the static mirror of the runtime correlation detector:
/// column references that cannot resolve against any relation named
/// inside the subquery are outer slots and become the memo key (the
/// runtime detector — which also sees mutant-redirected reads — stays
/// authoritative).
pub fn explain_with_memo(
    plan: &SelectPlan,
    memo_enabled: bool,
    catalog: Option<&Catalog>,
) -> String {
    explain_full(plan, memo_enabled, catalog, VecNote::Off)
}

/// [`explain_with_memo`], additionally annotating each clause expression
/// `[VEC]` or `[ROW(<reason>)]` per the vectorization prediction.
pub fn explain_full(
    plan: &SelectPlan,
    memo_enabled: bool,
    catalog: Option<&Catalog>,
    vec: VecNote,
) -> String {
    let mut out = String::new();
    let ectx = ExplainCtx {
        memo: memo_enabled,
        catalog,
        vec,
    };
    explain_select(plan, 0, ectx, &mut out);
    out.pop(); // trailing newline
    out
}

/// The `[VEC]` / `[ROW(<reason>)]` suffix for one clause expression.
///
/// Depth 0 is correct for every clause EXPLAIN renders: derived tables
/// and CTE bodies execute at the enclosing statement's subquery depth,
/// and expression subqueries — the only depth>0 contexts — surface as
/// one-line memo notes whose internal clauses are never rendered.
fn vec_note(e: &Expr, ectx: ExplainCtx) -> String {
    match ectx.vec {
        VecNote::Off => String::new(),
        VecNote::Disabled(reason) => format!(" [ROW({reason})]"),
        VecNote::Predict { bugs, dialect } => {
            match crate::vec_eval::classify_ast(e, bugs, dialect, crate::exec::StmtKind::Select, 0)
            {
                Ok(()) => " [VEC]".into(),
                Err(reason) => format!(" [ROW({reason})]"),
            }
        }
    }
}

/// Vectorization suffix for a clause made of several expressions (a
/// projection's items, an aggregation's group keys): `[VEC]` only when
/// every expression classifies, else the first fallback reason.
fn vec_note_all<'e>(exprs: impl Iterator<Item = &'e Expr>, ectx: ExplainCtx) -> String {
    match ectx.vec {
        VecNote::Off => String::new(),
        VecNote::Disabled(reason) => format!(" [ROW({reason})]"),
        VecNote::Predict { bugs, dialect } => {
            for e in exprs {
                if let Err(reason) = crate::vec_eval::classify_ast(
                    e,
                    bugs,
                    dialect,
                    crate::exec::StmtKind::Select,
                    0,
                ) {
                    return format!(" [ROW({reason})]");
                }
            }
            " [VEC]".into()
        }
    }
}

/// The output column names a SELECT is statically known to produce.
/// Sets `unknown` when enumeration is incomplete (wildcards).
fn select_output_columns(
    q: &Select,
    out: &mut std::collections::BTreeSet<String>,
    unknown: &mut bool,
) {
    fn body_cols(
        b: &crate::ast::SelectBody,
        out: &mut std::collections::BTreeSet<String>,
        unknown: &mut bool,
    ) {
        match b {
            crate::ast::SelectBody::Core(core) => {
                for item in &core.items {
                    match item {
                        SelectItem::Expr { expr, alias } => {
                            let name = match alias {
                                Some(a) => a.to_ascii_lowercase(),
                                None => match expr {
                                    Expr::Column(c) => c.column.to_ascii_lowercase(),
                                    other => other.to_string().to_ascii_lowercase(),
                                },
                            };
                            out.insert(name);
                        }
                        _ => *unknown = true,
                    }
                }
            }
            crate::ast::SelectBody::SetOp { left, .. } => body_cols(left, out, unknown),
            crate::ast::SelectBody::Values(rows) => {
                let arity = rows.first().map(|r| r.len()).unwrap_or(0);
                out.extend((1..=arity).map(|i| format!("column{i}")));
            }
        }
    }
    body_cols(&q.body, out, unknown);
}

/// Collect the column names every relation inside `q` contributes —
/// what bare references can resolve against locally. Sets `unknown`
/// when some relation's columns cannot be enumerated statically.
fn local_columns(
    q: &Select,
    catalog: &Catalog,
    out: &mut std::collections::BTreeSet<String>,
    unknown: &mut bool,
) {
    for cte in &q.with {
        if cte.columns.is_empty() {
            select_output_columns(&cte.query, out, unknown);
        } else {
            out.extend(cte.columns.iter().map(|c| c.to_ascii_lowercase()));
        }
        local_columns(&cte.query, catalog, out, unknown);
    }
    fn from_cols(
        te: &crate::ast::TableExpr,
        catalog: &Catalog,
        out: &mut std::collections::BTreeSet<String>,
        unknown: &mut bool,
    ) {
        match te {
            crate::ast::TableExpr::Named { name, .. } => {
                if let Ok(t) = catalog.table(name) {
                    out.extend(t.column_names().iter().map(|c| c.to_ascii_lowercase()));
                } else if let Some(v) = catalog.view(name) {
                    if v.columns.is_empty() {
                        select_output_columns(&v.query, out, unknown);
                    } else {
                        out.extend(v.columns.iter().map(|c| c.to_ascii_lowercase()));
                    }
                } else {
                    // A CTE reference (columns collected from `with`
                    // above / the enclosing query) or a missing relation.
                    *unknown = true;
                }
            }
            crate::ast::TableExpr::Derived { query, .. } => {
                select_output_columns(query, out, unknown);
                local_columns(query, catalog, out, unknown);
            }
            crate::ast::TableExpr::Values { rows, columns, .. } => {
                if columns.is_empty() {
                    let arity = rows.first().map(|r| r.len()).unwrap_or(0);
                    out.extend((1..=arity).map(|i| format!("column{i}")));
                } else {
                    out.extend(columns.iter().map(|c| c.to_ascii_lowercase()));
                }
            }
            crate::ast::TableExpr::Join { left, right, .. } => {
                from_cols(left, catalog, out, unknown);
                from_cols(right, catalog, out, unknown);
            }
        }
    }
    fn body_from_cols(
        b: &crate::ast::SelectBody,
        catalog: &Catalog,
        out: &mut std::collections::BTreeSet<String>,
        unknown: &mut bool,
    ) {
        match b {
            crate::ast::SelectBody::Core(core) => {
                if let Some(f) = &core.from {
                    from_cols(f, catalog, out, unknown);
                }
            }
            crate::ast::SelectBody::SetOp { left, right, .. } => {
                body_from_cols(left, catalog, out, unknown);
                body_from_cols(right, catalog, out, unknown);
            }
            crate::ast::SelectBody::Values(_) => {}
        }
    }
    body_from_cols(&q.body, catalog, out, unknown);
    crate::ast::visit::walk_select_exprs(q, &mut |e| {
        if let Expr::InSubquery { query, .. }
        | Expr::Exists { query, .. }
        | Expr::Scalar(query)
        | Expr::Quantified { query, .. } = e
        {
            let mut nested_unknown = false;
            body_from_cols(&query.body, catalog, out, &mut nested_unknown);
            if nested_unknown {
                *unknown = true;
            }
        }
    });
}

/// Collect every relation name or alias defined anywhere inside a
/// subquery (its FROM trees, CTE names, and nested subqueries) — the
/// names local column references can resolve against.
fn local_aliases(q: &Select, out: &mut std::collections::BTreeSet<String>) {
    for cte in &q.with {
        out.insert(cte.name.to_ascii_lowercase());
        local_aliases(&cte.query, out);
    }
    fn from_aliases(te: &crate::ast::TableExpr, out: &mut std::collections::BTreeSet<String>) {
        match te {
            crate::ast::TableExpr::Named { name, alias, .. } => {
                out.insert(
                    alias
                        .as_deref()
                        .unwrap_or(name.as_str())
                        .to_ascii_lowercase(),
                );
            }
            crate::ast::TableExpr::Derived { alias, query } => {
                out.insert(alias.to_ascii_lowercase());
                local_aliases(query, out);
            }
            crate::ast::TableExpr::Values { alias, .. } => {
                out.insert(alias.to_ascii_lowercase());
            }
            crate::ast::TableExpr::Join { left, right, .. } => {
                from_aliases(left, out);
                from_aliases(right, out);
            }
        }
    }
    fn body_aliases(b: &crate::ast::SelectBody, out: &mut std::collections::BTreeSet<String>) {
        match b {
            crate::ast::SelectBody::Core(core) => {
                if let Some(f) = &core.from {
                    from_aliases(f, out);
                }
            }
            crate::ast::SelectBody::SetOp { left, right, .. } => {
                body_aliases(left, out);
                body_aliases(right, out);
            }
            crate::ast::SelectBody::Values(_) => {}
        }
    }
    body_aliases(&q.body, out);
    // Nested subqueries introduce their own scopes; their aliases are
    // still "inside" q for the purpose of q's outer slots.
    crate::ast::visit::walk_select_exprs(q, &mut |e| {
        if let Expr::InSubquery { query, .. }
        | Expr::Exists { query, .. }
        | Expr::Scalar(query)
        | Expr::Quantified { query, .. } = e
        {
            let mut nested = std::collections::BTreeSet::new();
            body_aliases(&query.body, &mut nested);
            for cte in &query.with {
                nested.insert(cte.name.to_ascii_lowercase());
            }
            out.extend(nested);
        }
    });
}

/// Statically count a subquery's outer slots: distinct qualified column
/// references whose qualifier names no relation inside the subquery,
/// plus bare references that name no column of any local relation (when
/// the catalog lets those columns be enumerated — and every bare
/// reference for FROM-less probes). The runtime detector — which also
/// sees reads the name-collision mutant redirects — is authoritative;
/// this is the planner's prediction for EXPLAIN.
fn static_outer_slots(q: &Select, catalog: Option<&Catalog>) -> usize {
    let mut aliases = std::collections::BTreeSet::new();
    local_aliases(q, &mut aliases);
    // Bare references resolve against the local columns when these are
    // statically enumerable; otherwise they are assumed local.
    let mut cols = std::collections::BTreeSet::new();
    let mut cols_unknown = catalog.is_none();
    if let Some(catalog) = catalog {
        local_columns(q, catalog, &mut cols, &mut cols_unknown);
    }
    let mut outer: std::collections::BTreeSet<(String, String)> = std::collections::BTreeSet::new();
    crate::ast::visit::walk_select_exprs(q, &mut |e| {
        if let Expr::Column(c) = e {
            let col = c.column.to_ascii_lowercase();
            match &c.table {
                Some(t) => {
                    let t = t.to_ascii_lowercase();
                    if !aliases.contains(&t) {
                        outer.insert((t, col));
                    }
                }
                None => {
                    if aliases.is_empty() || (!cols_unknown && !cols.contains(&col)) {
                        outer.insert((String::new(), col));
                    }
                }
            }
        }
    });
    outer.len()
}

/// The EXPLAIN annotation line for one subquery.
fn memo_note(q: &Select, ectx: ExplainCtx) -> String {
    if !ectx.memo {
        return "SUBQUERY NONE".into();
    }
    match static_outer_slots(q, ectx.catalog) {
        0 => "SUBQUERY MEMO(full)".into(),
        n => format!("SUBQUERY MEMO(keyed: {n} slots)"),
    }
}

/// Append one annotation line per subquery directly inside `e`.
fn memo_notes(e: &Expr, indent: usize, ectx: ExplainCtx, out: &mut String) {
    crate::ast::visit::walk_expr_shallow(e, &mut |node| {
        if let Expr::InSubquery { query, .. }
        | Expr::Exists { query, .. }
        | Expr::Scalar(query)
        | Expr::Quantified { query, .. } = node
        {
            pad(indent, out);
            out.push_str(&memo_note(query, ectx));
            out.push('\n');
        }
    });
}

fn pad(indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn explain_select(plan: &SelectPlan, indent: usize, ectx: ExplainCtx, out: &mut String) {
    for (name, _, cte) in &plan.ctes {
        pad(indent, out);
        out.push_str(&format!("MATERIALIZE CTE {name}\n"));
        explain_select(cte, indent + 1, ectx, out);
    }
    if !plan.order_by.is_empty() {
        pad(indent, out);
        out.push_str(&format!("SORT ({} key(s))\n", plan.order_by.len()));
    }
    if plan.limit.is_some() || plan.offset.is_some() {
        pad(indent, out);
        out.push_str("LIMIT/OFFSET\n");
    }
    explain_body(&plan.body, indent, ectx, out);
}

fn explain_body(body: &BodyPlan, indent: usize, ectx: ExplainCtx, out: &mut String) {
    match body {
        BodyPlan::Core(core) => {
            pad(indent, out);
            let agg = !core.group_by.is_empty()
                || core.items.iter().any(|i| match i {
                    SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
                    _ => false,
                });
            let mut label = String::from("PROJECT");
            if core.distinct {
                label.push_str(" DISTINCT");
            }
            // Aggregated cores project per group (row-at-a-time by
            // design); the vectorization note then sits on AGGREGATE.
            let proj_note = if agg {
                String::new()
            } else {
                vec_note_all(
                    core.items.iter().filter_map(|i| match i {
                        SelectItem::Expr { expr, .. } => Some(expr),
                        _ => None,
                    }),
                    ectx,
                )
            };
            out.push_str(&format!(
                "{label} ({} item(s)){proj_note}\n",
                core.items.len()
            ));
            for item in &core.items {
                if let SelectItem::Expr { expr, .. } = item {
                    memo_notes(expr, indent + 1, ectx, out);
                }
            }
            if agg {
                pad(indent + 1, out);
                out.push_str(&format!(
                    "AGGREGATE (group by {} expr(s){}){}\n",
                    core.group_by.len(),
                    if core.having.is_some() {
                        ", having"
                    } else {
                        ""
                    },
                    vec_note_all(core.group_by.iter(), ectx)
                ));
                if let Some(h) = &core.having {
                    memo_notes(h, indent + 2, ectx, out);
                }
            }
            if let Some(w) = &core.where_clause {
                pad(indent + 1, out);
                out.push_str(&format!("FILTER {w}{}\n", vec_note(w, ectx)));
                memo_notes(w, indent + 2, ectx, out);
            }
            match &core.from {
                Some(f) => explain_from(f, indent + 1, ectx, out),
                None => {
                    pad(indent + 1, out);
                    out.push_str("SINGLE ROW\n");
                }
            }
        }
        BodyPlan::SetOp {
            op,
            all,
            left,
            right,
        } => {
            pad(indent, out);
            out.push_str(&format!(
                "{}{}\n",
                op.sql_name(),
                if *all { " ALL" } else { "" }
            ));
            explain_body(left, indent + 1, ectx, out);
            explain_body(right, indent + 1, ectx, out);
        }
        BodyPlan::Values(rows) => {
            pad(indent, out);
            out.push_str(&format!("VALUES ({} row(s))\n", rows.len()));
        }
    }
}

fn explain_from(from: &FromPlan, indent: usize, ectx: ExplainCtx, out: &mut String) {
    match from {
        FromPlan::SeqScan { table, alias } => {
            pad(indent, out);
            out.push_str(&format!("SCAN {table} AS {alias}\n"));
        }
        FromPlan::IndexScan {
            table,
            alias,
            index,
            reverse,
        } => {
            pad(indent, out);
            out.push_str(&format!(
                "INDEX SCAN {table} AS {alias} USING {index}{}\n",
                if *reverse { " (reverse)" } else { "" }
            ));
        }
        FromPlan::IndexSeek {
            table,
            alias,
            index,
            eq,
            range,
            ordered,
            reverse,
        } => {
            pad(indent, out);
            let n = eq.len() + usize::from(range.is_some());
            let shape = if range.is_some() {
                "range"
            } else if eq.is_empty() {
                "full"
            } else {
                "point"
            };
            out.push_str(&format!(
                "INDEX SEEK {table} AS {alias} USING {index} ({n} key(s), {shape}{}{})\n",
                if *ordered { ", ordered" } else { "" },
                if *reverse { ", reverse" } else { "" }
            ));
        }
        FromPlan::Derived {
            plan,
            alias,
            from_view,
            ..
        } => {
            pad(indent, out);
            out.push_str(&format!(
                "{} {alias}\n",
                if *from_view { "VIEW" } else { "DERIVED" }
            ));
            explain_select(plan, indent + 1, ectx, out);
        }
        FromPlan::ValuesScan { rows, alias, .. } => {
            pad(indent, out);
            out.push_str(&format!("VALUES SCAN {alias} ({} row(s))\n", rows.len()));
        }
        FromPlan::CteScan { name, alias } => {
            pad(indent, out);
            out.push_str(&format!("CTE SCAN {name} AS {alias}\n"));
        }
        FromPlan::Join {
            kind,
            on,
            hash_keys,
            left,
            right,
            ..
        } => {
            pad(indent, out);
            let strategy = if hash_keys.is_empty() {
                "NESTED LOOP".to_string()
            } else {
                format!("HASH ({} key(s))", hash_keys.len())
            };
            out.push_str(&format!(
                "{strategy} {}{}\n",
                kind.sql_name(),
                on.as_ref().map(|o| format!(" ON {o}")).unwrap_or_default()
            ));
            if let Some(on) = on {
                memo_notes(on, indent + 1, ectx, out);
            }
            explain_from(left, indent + 1, ectx, out);
            explain_from(right, indent + 1, ectx, out);
        }
        FromPlan::Filtered { input, pred, .. } => {
            pad(indent, out);
            out.push_str(&format!("PUSHED FILTER {pred}{}\n", vec_note(pred, ectx)));
            memo_notes(pred, indent + 1, ectx, out);
            explain_from(input, indent + 1, ectx, out);
        }
    }
}

// ---------------------------------------------------------------------------
// Plan fingerprints
// ---------------------------------------------------------------------------

/// Hash the *plan-relevant* shape of a plan: operators, join kinds,
/// access paths, aggregation structure — and, crucially, the recursive
/// shapes of embedded subqueries, which real planners compile into
/// distinct subplans. Pure scalar expression structure (`a+b > c` vs
/// `a*b < c`) does **not** contribute: a real DBMS executes both with the
/// same plan. This is what makes subquery-bearing workloads cover vastly
/// more unique plans (Table 3, Figure 3).
pub fn fingerprint(plan: &SelectPlan) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    hash_select(plan, &mut h);
    h.finish()
}

fn hash_select(plan: &SelectPlan, h: &mut impl Hasher) {
    0xA0u8.hash(h);
    plan.ctes.len().hash(h);
    for (name, cols, p) in &plan.ctes {
        name.hash(h);
        cols.len().hash(h);
        hash_select(p, h);
    }
    hash_body(&plan.body, h);
    plan.order_by.len().hash(h);
    for o in &plan.order_by {
        (o.order == crate::ast::SortOrder::Desc).hash(h);
        hash_expr_shape(&o.expr, h);
    }
    plan.limit.is_some().hash(h);
    plan.offset.is_some().hash(h);
}

fn hash_body(body: &BodyPlan, h: &mut impl Hasher) {
    match body {
        BodyPlan::Core(core) => {
            0xB0u8.hash(h);
            core.distinct.hash(h);
            core.items.len().hash(h);
            for item in &core.items {
                match item {
                    SelectItem::Wildcard => 0u8.hash(h),
                    SelectItem::TableWildcard(_) => 1u8.hash(h),
                    SelectItem::Expr { expr, .. } => {
                        2u8.hash(h);
                        hash_expr_shape(expr, h);
                    }
                }
            }
            match &core.from {
                Some(f) => {
                    1u8.hash(h);
                    hash_from(f, h);
                }
                None => 0u8.hash(h),
            }
            match &core.where_clause {
                Some(w) => {
                    1u8.hash(h);
                    hash_expr_shape(w, h);
                }
                None => 0u8.hash(h),
            }
            core.group_by.len().hash(h);
            for g in &core.group_by {
                hash_expr_shape(g, h);
            }
            core.having.is_some().hash(h);
            if let Some(having) = &core.having {
                hash_expr_shape(having, h);
            }
        }
        BodyPlan::SetOp {
            op,
            all,
            left,
            right,
        } => {
            0xB1u8.hash(h);
            (*op as u8).hash(h);
            all.hash(h);
            hash_body(left, h);
            hash_body(right, h);
        }
        BodyPlan::Values(rows) => {
            0xB2u8.hash(h);
            rows.len().hash(h);
            rows.first().map(|r| r.len()).unwrap_or(0).hash(h);
        }
    }
}

fn hash_from(from: &FromPlan, h: &mut impl Hasher) {
    match from {
        FromPlan::SeqScan { table, .. } => {
            0xC0u8.hash(h);
            table.hash(h);
        }
        FromPlan::IndexScan {
            table,
            index,
            reverse,
            ..
        } => {
            0xC1u8.hash(h);
            table.hash(h);
            index.hash(h);
            reverse.hash(h);
        }
        FromPlan::IndexSeek {
            table,
            index,
            eq,
            range,
            ordered,
            reverse,
            ..
        } => {
            // Shape only: key arity and range operator, never the probe
            // constants (real planners share a plan across parameters).
            0xC7u8.hash(h);
            table.hash(h);
            index.hash(h);
            eq.len().hash(h);
            match range {
                Some((op, _)) => {
                    1u8.hash(h);
                    (*op as u8).hash(h);
                }
                None => 0u8.hash(h),
            }
            ordered.hash(h);
            reverse.hash(h);
        }
        FromPlan::Derived {
            plan, from_view, ..
        } => {
            0xC2u8.hash(h);
            from_view.hash(h);
            hash_select(plan, h);
        }
        FromPlan::ValuesScan { rows, .. } => {
            0xC3u8.hash(h);
            rows.len().hash(h);
        }
        FromPlan::CteScan { name, .. } => {
            0xC4u8.hash(h);
            name.hash(h);
        }
        FromPlan::Join {
            kind,
            on,
            left,
            right,
            ..
        } => {
            0xC5u8.hash(h);
            (*kind as u8).hash(h);
            match on {
                Some(on) => {
                    1u8.hash(h);
                    hash_expr_shape(on, h);
                }
                None => 0u8.hash(h),
            }
            hash_from(left, h);
            hash_from(right, h);
        }
        FromPlan::Filtered { input, pred, .. } => {
            0xC6u8.hash(h);
            hash_expr_shape(pred, h);
            hash_from(input, h);
        }
    }
}

/// Contribute an expression's *plan-relevant* structure to the hash.
///
/// Real planners compile scalar arithmetic into opaque filter/projection
/// programs: `a+b > c` and `a*b < c` execute with the same plan. What
/// changes the plan is relational structure — subqueries (each becomes a
/// subplan, with its own access paths), `EXISTS`/`IN`/quantified operators
/// (semi-join strategies), and which relations a predicate touches. Only
/// those contribute here; everything else hashes to a fixed token.
pub fn hash_expr_shape(expr: &Expr, h: &mut impl Hasher) {
    let mut subqueries: Vec<(u8, &Select)> = Vec::new();
    collect_plan_relevant(expr, &mut subqueries);
    subqueries.len().hash(h);
    for (kind, q) in subqueries {
        kind.hash(h);
        hash_select_shape(q, h);
    }
}

/// Collect the subquery-bearing nodes of an expression (not descending
/// into the subqueries themselves — their structure is hashed
/// recursively via `hash_select_shape`).
fn collect_plan_relevant<'a>(expr: &'a Expr, out: &mut Vec<(u8, &'a Select)>) {
    match expr {
        Expr::InSubquery { expr, query, .. } => {
            collect_plan_relevant(expr, out);
            out.push((1, query));
        }
        Expr::Exists { query, .. } => out.push((2, query)),
        Expr::Scalar(query) => out.push((3, query)),
        Expr::Quantified {
            quantifier,
            expr,
            query,
            ..
        } => {
            collect_plan_relevant(expr, out);
            out.push((4 + *quantifier as u8, query));
        }
        Expr::Literal(_) | Expr::Column(_) => {}
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::IsNull { expr, .. } => {
            collect_plan_relevant(expr, out)
        }
        Expr::Binary { left, right, .. } => {
            collect_plan_relevant(left, out);
            collect_plan_relevant(right, out);
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_plan_relevant(expr, out);
            collect_plan_relevant(low, out);
            collect_plan_relevant(high, out);
        }
        Expr::InList { expr, list, .. } => {
            collect_plan_relevant(expr, out);
            for e in list {
                collect_plan_relevant(e, out);
            }
        }
        Expr::Case {
            operand,
            whens,
            else_expr,
        } => {
            if let Some(o) = operand {
                collect_plan_relevant(o, out);
            }
            for (w, t) in whens {
                collect_plan_relevant(w, out);
                collect_plan_relevant(t, out);
            }
            if let Some(e) = else_expr {
                collect_plan_relevant(e, out);
            }
        }
        Expr::Func { args, .. } => {
            for a in args {
                collect_plan_relevant(a, out);
            }
        }
        Expr::Agg { arg, .. } => {
            if let Some(a) = arg {
                collect_plan_relevant(a, out);
            }
        }
        Expr::Like { expr, pattern, .. } => {
            collect_plan_relevant(expr, out);
            collect_plan_relevant(pattern, out);
        }
    }
}

/// Hash the plan shape of an un-planned subquery (the planner plans
/// subqueries lazily, so fingerprints use the AST's relational structure:
/// FROM shape, aggregation, set operations, and nested subqueries).
fn hash_select_shape(select: &Select, h: &mut impl Hasher) {
    0xD0u8.hash(h);
    select.with.len().hash(h);
    for cte in &select.with {
        hash_select_shape(&cte.query, h);
    }
    fn table(te: &crate::ast::TableExpr, h: &mut impl Hasher) {
        match te {
            crate::ast::TableExpr::Named {
                name, indexed_by, ..
            } => {
                0u8.hash(h);
                name.to_ascii_lowercase().hash(h);
                indexed_by.is_some().hash(h);
            }
            crate::ast::TableExpr::Derived { query, .. } => {
                1u8.hash(h);
                hash_select_shape(query, h);
            }
            crate::ast::TableExpr::Values { rows, .. } => {
                2u8.hash(h);
                rows.first().map(|r| r.len()).unwrap_or(0).hash(h);
            }
            crate::ast::TableExpr::Join {
                left,
                right,
                kind,
                on,
            } => {
                3u8.hash(h);
                (*kind as u8).hash(h);
                table(left, h);
                table(right, h);
                if let Some(on) = on {
                    hash_expr_shape(on, h);
                }
            }
        }
    }
    fn body(b: &SelectBody, h: &mut impl Hasher) {
        match b {
            SelectBody::Core(c) => {
                0u8.hash(h);
                c.distinct.hash(h);
                c.items.len().hash(h);
                let aggregated = c.items.iter().any(|i| match i {
                    SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
                    _ => false,
                });
                aggregated.hash(h);
                for item in &c.items {
                    if let SelectItem::Expr { expr, .. } = item {
                        hash_expr_shape(expr, h);
                    }
                }
                match &c.from {
                    Some(f) => {
                        1u8.hash(h);
                        table(f, h);
                    }
                    None => 0u8.hash(h),
                }
                match &c.where_clause {
                    Some(w) => {
                        1u8.hash(h);
                        hash_expr_shape(w, h);
                    }
                    None => 0u8.hash(h),
                }
                c.group_by.len().hash(h);
                c.having.is_some().hash(h);
                if let Some(hv) = &c.having {
                    hash_expr_shape(hv, h);
                }
            }
            SelectBody::SetOp {
                op,
                all,
                left,
                right,
            } => {
                1u8.hash(h);
                (*op as u8).hash(h);
                all.hash(h);
                body(left, h);
                body(right, h);
            }
            SelectBody::Values(rows) => {
                2u8.hash(h);
                rows.len().hash(h);
            }
        }
    }
    body(&select.body, h);
    select.order_by.len().hash(h);
    select.limit.is_some().hash(h);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ColumnDef;
    use crate::value::DataType;

    fn setup() -> Catalog {
        let mut cat = Catalog::new();
        cat.create_table(
            "t0",
            vec![
                ColumnDef {
                    name: "c0".into(),
                    ty: DataType::Int,
                    not_null: false,
                },
                ColumnDef {
                    name: "c1".into(),
                    ty: DataType::Int,
                    not_null: false,
                },
            ],
            false,
        )
        .unwrap();
        cat.create_index("i0", "t0", vec![Expr::bare_col("c0")], false)
            .unwrap();
        cat
    }

    fn pctx<'a>(
        cat: &'a Catalog,
        bugs: &'a BugRegistry,
        cov: &'a Coverage,
        optimize: bool,
    ) -> PlanCtx<'a> {
        PlanCtx {
            catalog: cat,
            dialect: Dialect::Sqlite,
            bugs,
            cov,
            optimize,
        }
    }

    fn simple_select(where_clause: Option<Expr>) -> Select {
        Select::from_core(SelectCore {
            items: vec![SelectItem::Wildcard],
            from: Some(TableExpr::named("t0")),
            where_clause,
            ..SelectCore::default()
        })
    }

    #[test]
    fn index_selected_for_matching_probe() {
        // A bare-column index on the probed column upgrades the scan to
        // a range seek (the legacy ordered IndexScan remains for
        // expression indexes — see `expr_index_keeps_ordered_scan`).
        let cat = setup();
        let bugs = BugRegistry::none();
        let cov = Coverage::new();
        let ctx = pctx(&cat, &bugs, &cov, true);
        let sel = simple_select(Some(Expr::bin(
            BinaryOp::Gt,
            Expr::col("t0", "c0"),
            Expr::lit(5i64),
        )));
        let plan = plan_select(&sel, &ctx, &BTreeSet::new()).unwrap();
        match plan.body {
            BodyPlan::Core(c) => match c.from {
                Some(FromPlan::IndexSeek {
                    ref eq,
                    ref range,
                    ordered,
                    reverse,
                    ..
                }) => {
                    assert!(eq.is_empty());
                    assert!(matches!(range, Some((BinaryOp::Gt, Value::Int(5)))));
                    assert!(!ordered);
                    assert!(!reverse);
                }
                ref other => panic!("expected IndexSeek, got {other:?}"),
            },
            _ => panic!("expected core"),
        }
    }

    #[test]
    fn expr_index_keeps_ordered_scan() {
        // Expression indexes have no physical ordered structure: the
        // probe-match heuristic still picks the legacy ordered IndexScan.
        let mut cat = setup();
        cat.create_index(
            "i1",
            "t0",
            vec![Expr::bin(
                BinaryOp::Gt,
                Expr::bare_col("c1"),
                Expr::lit(0i64),
            )],
            false,
        )
        .unwrap();
        let bugs = BugRegistry::none();
        let cov = Coverage::new();
        let ctx = pctx(&cat, &bugs, &cov, true);
        let sel = simple_select(Some(Expr::bin(
            BinaryOp::Gt,
            Expr::col("t0", "c1"),
            Expr::lit(0i64),
        )));
        let plan = plan_select(&sel, &ctx, &BTreeSet::new()).unwrap();
        match plan.body {
            BodyPlan::Core(c) => {
                assert!(matches!(c.from, Some(FromPlan::IndexScan { .. })));
            }
            _ => panic!("expected core"),
        }
    }

    #[test]
    fn no_index_without_optimizer() {
        let cat = setup();
        let bugs = BugRegistry::none();
        let cov = Coverage::new();
        let ctx = pctx(&cat, &bugs, &cov, false);
        let sel = simple_select(Some(Expr::bin(
            BinaryOp::Gt,
            Expr::col("t0", "c0"),
            Expr::lit(5i64),
        )));
        let plan = plan_select(&sel, &ctx, &BTreeSet::new()).unwrap();
        match plan.body {
            BodyPlan::Core(c) => assert!(matches!(c.from, Some(FromPlan::SeqScan { .. }))),
            _ => panic!("expected core"),
        }
    }

    #[test]
    fn constant_filter_folds_and_eliminates() {
        let cat = setup();
        let bugs = BugRegistry::none();
        let cov = Coverage::new();
        let ctx = pctx(&cat, &bugs, &cov, true);
        let sel = simple_select(Some(Expr::bin(
            BinaryOp::Lt,
            Expr::lit(1i64),
            Expr::lit(2i64),
        )));
        let plan = plan_select(&sel, &ctx, &BTreeSet::new()).unwrap();
        match plan.body {
            BodyPlan::Core(c) => assert!(c.where_clause.is_none(), "TRUE filter eliminated"),
            _ => panic!("expected core"),
        }
    }

    #[test]
    fn fingerprints_are_plan_relevant() {
        let cat = setup();
        let bugs = BugRegistry::none();
        let cov = Coverage::new();
        let ctx = pctx(&cat, &bugs, &cov, false);
        let plan_of =
            |e: Expr| plan_select(&simple_select(Some(e)), &ctx, &BTreeSet::new()).unwrap();
        // Scalar expression differences do NOT change the plan (a real
        // DBMS runs `c1 = 1` and `c1 < 999` with the same scan + filter).
        let a = plan_of(Expr::eq(Expr::col("t0", "c1"), Expr::lit(1i64)));
        let b = plan_of(Expr::bin(
            BinaryOp::Lt,
            Expr::col("t0", "c1"),
            Expr::lit(999i64),
        ));
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "scalar shape is not plan-relevant"
        );
        // A subquery embeds a subplan and does change the fingerprint; two
        // structurally different subqueries differ from each other too.
        let sub1 = Select::scalar_probe(Expr::lit(1i64));
        let mut sub2 = Select::from_core(SelectCore {
            items: vec![SelectItem::Expr {
                expr: Expr::count_star(),
                alias: None,
            }],
            from: Some(TableExpr::named("t0")),
            ..SelectCore::default()
        });
        let c = plan_of(Expr::eq(Expr::Scalar(Box::new(sub1)), Expr::lit(1i64)));
        let d = plan_of(Expr::eq(
            Expr::Scalar(Box::new(sub2.clone())),
            Expr::lit(1i64),
        ));
        assert_ne!(
            fingerprint(&a),
            fingerprint(&c),
            "subquery changes the plan"
        );
        assert_ne!(
            fingerprint(&c),
            fingerprint(&d),
            "different subplans differ"
        );
        // Aggregation structure inside the subquery is plan-relevant.
        sub2.core_mut().unwrap().group_by = vec![Expr::col("t0", "c0")];
        let e = plan_of(Expr::eq(Expr::Scalar(Box::new(sub2)), Expr::lit(1i64)));
        assert_ne!(
            fingerprint(&d),
            fingerprint(&e),
            "GROUP BY changes the subplan"
        );
    }

    #[test]
    fn pushdown_through_inner_join_only() {
        let mut cat = setup();
        cat.create_table(
            "t1",
            vec![ColumnDef {
                name: "c0".into(),
                ty: DataType::Int,
                not_null: false,
            }],
            false,
        )
        .unwrap();
        let bugs = BugRegistry::none();
        let cov = Coverage::new();
        let ctx = pctx(&cat, &bugs, &cov, true);
        let join = TableExpr::Join {
            left: Box::new(TableExpr::named("t0")),
            right: Box::new(TableExpr::named("t1")),
            kind: JoinKind::Left,
            on: Some(Expr::eq(Expr::col("t0", "c0"), Expr::col("t1", "c0"))),
        };
        let sel = Select::from_core(SelectCore {
            items: vec![SelectItem::Wildcard],
            from: Some(join),
            where_clause: Some(Expr::is_null(Expr::col("t1", "c0"))),
            ..SelectCore::default()
        });
        let plan = plan_select(&sel, &ctx, &BTreeSet::new()).unwrap();
        match plan.body {
            BodyPlan::Core(c) => {
                // LEFT JOIN blocks pushdown of the right-side predicate.
                assert!(c.where_clause.is_some());
                match c.from.unwrap() {
                    FromPlan::Join { right, .. } => {
                        assert!(matches!(*right, FromPlan::SeqScan { .. }))
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            _ => panic!("expected core"),
        }
    }

    #[test]
    fn pushdown_bug_pushes_below_left_join() {
        let mut cat = setup();
        cat.create_table(
            "t1",
            vec![ColumnDef {
                name: "c0".into(),
                ty: DataType::Int,
                not_null: false,
            }],
            false,
        )
        .unwrap();
        let mut bugs = BugRegistry::none();
        bugs.enable(BugId::DuckdbPushdownLeftJoin);
        let cov = Coverage::new();
        let ctx = pctx(&cat, &bugs, &cov, true);
        let join = TableExpr::Join {
            left: Box::new(TableExpr::named("t0")),
            right: Box::new(TableExpr::named("t1")),
            kind: JoinKind::Left,
            on: Some(Expr::eq(Expr::col("t0", "c0"), Expr::col("t1", "c0"))),
        };
        let sel = Select::from_core(SelectCore {
            items: vec![SelectItem::Wildcard],
            from: Some(join),
            where_clause: Some(Expr::is_null(Expr::col("t1", "c0"))),
            ..SelectCore::default()
        });
        let plan = plan_select(&sel, &ctx, &BTreeSet::new()).unwrap();
        match plan.body {
            BodyPlan::Core(c) => {
                assert!(c.where_clause.is_none(), "predicate illegally pushed");
                match c.from.unwrap() {
                    FromPlan::Join { right, .. } => {
                        assert!(matches!(*right, FromPlan::Filtered { .. }))
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            _ => panic!("expected core"),
        }
    }

    #[test]
    fn indexed_by_unknown_index_errors() {
        let cat = setup();
        let bugs = BugRegistry::none();
        let cov = Coverage::new();
        let ctx = pctx(&cat, &bugs, &cov, true);
        let sel = Select::from_core(SelectCore {
            items: vec![SelectItem::Wildcard],
            from: Some(TableExpr::Named {
                name: "t0".into(),
                alias: None,
                indexed_by: Some("nope".into()),
            }),
            ..SelectCore::default()
        });
        assert!(matches!(
            plan_select(&sel, &ctx, &BTreeSet::new()),
            Err(Error::Catalog(_))
        ));
    }
}
