//! Per-statement plan / binding / result caches.
//!
//! A statement owns one [`StmtCaches`] (inside [`crate::exec::EngineCtx`],
//! which [`crate::Database`] rebuilds per statement — so every cache is
//! invalidated at statement boundaries, and DML between statements can
//! never leak stale results). Three layers:
//!
//! 1. **Subquery plans** ([`SubqEntry::plan`]): `exec::exec_subquery`
//!    previously re-planned a subquery on every evaluation — once per
//!    outer row for correlated predicates. Plans are now compiled once
//!    per statement, keyed by the subquery AST's heap address and
//!    verified against a stored AST clone (the allocator may reuse an
//!    address within a statement; a stale hit must never be trusted).
//! 2. **Bindings**: clause expressions that live inside a retained plan
//!    (or the statement AST) are bound once per statement instead of once
//!    per operator instantiation — see `exec::Prepared` and the
//!    projection / grouped-binding entries here. Pointer-keyed caching is
//!    sound because every plan whose expressions serve as keys is kept
//!    alive for the whole statement: the statement AST and catalog
//!    outlive execution, subquery plans are owned by this cache, and
//!    replaced subquery entries are parked in `retired` rather than
//!    dropped, so a key's address is never freed (hence never reused)
//!    mid-statement.
//! 3. **Results** ([`SubqEntry::result`], [`KeyedMemo`]): a subquery that
//!    read no outer column during a full evaluation is non-correlated —
//!    its output is a deterministic function of table state, which cannot
//!    change within a statement — so the whole result relation is
//!    memoized. A subquery that *did* read outer columns is a
//!    deterministic function of table state plus exactly the slots it
//!    read, so its result is memoized keyed by those slots' values: K
//!    distinct outer keys cost K executions instead of one per outer
//!    row. Correlation is observed at runtime
//!    (`EngineCtx::outer_floor`/`outer_reads`), which also keeps the
//!    `TidbCorrelatedNameCollision` mutant honest: when the mutant
//!    redirects a binding to an outer frame, the redirected read is
//!    tracked at the load site and widens the memo key, so the mutant's
//!    per-row effect can never be memoized away.
//! 4. **FROM results** ([`StmtCaches::from_results`]): a correlated
//!    subquery re-instantiates its operators per outer key, but its FROM
//!    internals evaluate on rootless frame stacks and cannot read outer
//!    columns — the materialized scan/join output is a function of table
//!    state alone and is shared across re-instantiations (shared
//!    [`crate::value::Row`]s make that a refcount bump per row).
//!    Subtrees that scan CTEs, nest
//!    derived tables, or embed subqueries are conservatively excluded
//!    (see `exec::from_result_cacheable`); [`crate::exec::ScanMode::Cloning`]
//!    disables this layer together with row sharing.
//!
//! The caches are bypassed entirely in [`crate::exec::BindMode::PerRow`]
//! (the benchmarking baseline re-binds per row by design).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::ast::{Expr, Select};
use crate::bind::{AggSpec, BoundExpr};
use crate::exec::Frame;
use crate::plan::SelectPlan;
use crate::value::{Relation, Value};

/// Upper bound on memoized results per keyed subquery entry — a backstop
/// against statements with pathological key cardinality; beyond it the
/// subquery simply re-executes (lookups still serve the stored keys).
const MAX_KEYED_RESULTS: usize = 1 << 16;

/// A memo key component: *exact* value identity, deliberately stricter
/// than SQL `=` (`2` and `2.0` compare SQL-equal but can behave
/// differently inside a subquery, e.g. under `typeof`-style dialect
/// rules or text coercion). Reals key by bit pattern — `-0.0`, `0.0` and
/// NaN payloads all land on distinct keys, which costs at most a spare
/// re-execution, never a wrong hit.
#[derive(PartialEq, Eq, Hash)]
pub(crate) enum MemoKey {
    Null,
    Int(i64),
    Real(u64),
    Text(String),
    Bool(bool),
}

impl MemoKey {
    fn of(v: &Value) -> MemoKey {
        match v {
            Value::Null => MemoKey::Null,
            Value::Int(i) => MemoKey::Int(*i),
            Value::Real(r) => MemoKey::Real(r.to_bits()),
            Value::Text(s) => MemoKey::Text(s.clone()),
            Value::Bool(b) => MemoKey::Bool(*b),
        }
    }
}

/// Results of one correlated subquery, memoized per outer key: `slots`
/// is the exact set of outer slots one execution read (sorted, deduped),
/// `map` takes the values of those slots to the result relation.
pub(crate) struct KeyedMemo {
    /// `(absolute frame index, column ordinal)` — indices into the outer
    /// scope stack the subquery evaluates under.
    slots: Vec<(u32, u32)>,
    map: HashMap<Vec<MemoKey>, Rc<Relation>>,
}

/// One cached subquery: the compiled plan plus the result memo — the full
/// relation once an evaluation proves the subquery non-correlated, or
/// per-outer-key relations keyed by the slots a correlated evaluation
/// actually read (see [`crate::exec::exec_subquery`]).
pub(crate) struct SubqEntry {
    /// AST identity check for the pointer key (see module docs).
    pub ast: Select,
    /// CTE names visible when the plan was compiled. A plan is a function
    /// of the AST *and* this set (a name may resolve to a CTE scan in one
    /// scope and a base table in another), so a hit must match both.
    pub cte_names: std::collections::BTreeSet<String>,
    pub plan: Rc<SelectPlan>,
    pub result: RefCell<Option<Rc<Relation>>>,
    /// Keyed memo groups, one per distinct observed slot set (almost
    /// always exactly one — the bound plan reads fixed slots unless
    /// short-circuiting evaluation varies the path).
    keyed: RefCell<Vec<KeyedMemo>>,
    /// Scratch probe key reused across lookups — the per-outer-row probe
    /// allocates nothing beyond TEXT slot values (which must be cloned
    /// into the hashable key form).
    probe: RefCell<Vec<MemoKey>>,
}

/// Fill `key` with the current values of `slots` from the outer scope
/// stack. `false` when a slot does not exist in this stack (an AST-equal
/// subquery re-planned at a different nesting — never a valid hit).
fn slot_values(slots: &[(u32, u32)], scopes: &[Frame], key: &mut Vec<MemoKey>) -> bool {
    key.clear();
    for &(fi, ci) in slots {
        let Some(frame) = scopes.get(fi as usize) else {
            return false;
        };
        let Some(v) = frame.row.get(ci as usize) else {
            return false;
        };
        key.push(MemoKey::of(v));
    }
    true
}

impl SubqEntry {
    pub fn new(
        ast: Select,
        cte_names: std::collections::BTreeSet<String>,
        plan: Rc<SelectPlan>,
    ) -> SubqEntry {
        SubqEntry {
            ast,
            cte_names,
            plan,
            result: RefCell::new(None),
            keyed: RefCell::new(Vec::new()),
            probe: RefCell::new(Vec::new()),
        }
    }

    /// Keyed-memo lookup: a stored result is reusable when the current
    /// outer rows carry the same values in every slot the cached
    /// execution read. On a hit, the matched slot set is reported through
    /// `note` (for propagation to the enclosing correlation detector)
    /// before the result is returned.
    pub fn keyed_lookup(
        &self,
        scopes: &[Frame],
        mut note: impl FnMut(u32, u32),
    ) -> Option<Rc<Relation>> {
        let keyed = self.keyed.borrow();
        let mut key = self.probe.borrow_mut();
        for group in keyed.iter() {
            if !slot_values(&group.slots, scopes, &mut key) {
                continue;
            }
            if let Some(rel) = group.map.get(&*key) {
                for &(fi, ci) in &group.slots {
                    note(fi, ci);
                }
                return Some(Rc::clone(rel));
            }
        }
        None
    }

    /// Store a correlated execution's result under the slots it read.
    pub fn keyed_insert(&self, mut slots: Vec<(u32, u32)>, scopes: &[Frame], rel: Rc<Relation>) {
        slots.sort_unstable();
        let mut key = Vec::with_capacity(slots.len());
        if !slot_values(&slots, scopes, &mut key) {
            return;
        }
        let mut keyed = self.keyed.borrow_mut();
        match keyed.iter_mut().find(|g| g.slots == slots) {
            Some(group) => {
                if group.map.len() < MAX_KEYED_RESULTS {
                    group.map.insert(key, rel);
                }
            }
            None => keyed.push(KeyedMemo {
                slots,
                map: HashMap::from([(key, rel)]),
            }),
        }
    }
}

/// Compiled projection of a non-aggregated select core: expanded output
/// columns plus each item's expression (owned here — `expand_items`
/// builds temporaries) and its bound form.
pub(crate) struct ProjBindings {
    pub columns: Vec<String>,
    pub exprs: Vec<Expr>,
    pub bound: Vec<Rc<BoundExpr>>,
}

/// Compiled grouped execution state: resolved group keys, projection and
/// HAVING bound through one binder, and the aggregate slot table.
pub(crate) struct GroupedBindings {
    pub group_exprs: Vec<Expr>,
    pub group_bound: Vec<Rc<BoundExpr>>,
    pub columns: Vec<String>,
    pub bound_projs: Vec<BoundExpr>,
    pub bound_having: Option<BoundExpr>,
    pub agg_specs: Vec<AggSpec>,
}

/// A pointer-keyed binding cache (see [`get_or_build`]).
pub(crate) type PtrCache<T> = RefCell<HashMap<usize, Rc<T>>>;

/// The single get-or-build used by every pointer-keyed binding cache.
/// `cacheable` must come from `EngineCtx::bindings_cacheable` — it owns
/// the soundness gate (depth > 0, so the site re-executes and its plan is
/// retained; never the PerRow baseline, whose plans are not retained and
/// whose addresses may be reused mid-statement).
pub(crate) fn get_or_build<T>(
    map: &PtrCache<T>,
    cacheable: bool,
    key: usize,
    build: impl FnOnce() -> crate::error::Result<Rc<T>>,
) -> crate::error::Result<Rc<T>> {
    if !cacheable {
        return build();
    }
    if let Some(v) = map.borrow().get(&key).cloned() {
        return Ok(v);
    }
    let v = build()?;
    map.borrow_mut().insert(key, Rc::clone(&v));
    Ok(v)
}

/// All per-statement caches. Single-threaded by design, like the rest of
/// the engine context.
#[derive(Default)]
pub(crate) struct StmtCaches {
    subq: RefCell<HashMap<usize, Rc<SubqEntry>>>,
    /// Clause expressions, keyed by AST node address.
    pub bound: PtrCache<BoundExpr>,
    /// Plain projections, keyed by core-plan address.
    pub proj: PtrCache<ProjBindings>,
    /// Grouped-execution state, keyed by core-plan address.
    pub grouped: PtrCache<GroupedBindings>,
    /// Hash-join key bindings (left-side, right-side), keyed by the
    /// plan's `hash_keys` buffer address.
    pub join_keys: PtrCache<(Vec<BoundExpr>, Vec<BoundExpr>)>,
    /// Materialized FROM subtree results, keyed by `FromPlan` address
    /// (module docs, layer 4).
    pub from_results: PtrCache<crate::exec::FromResult>,
    /// Graveyard for replaced subquery entries (address-stability, see
    /// module docs).
    retired: RefCell<Vec<Rc<SubqEntry>>>,
}

impl StmtCaches {
    /// Verified lookup: the entry counts only if the stored AST still
    /// matches what lives at the key address.
    pub fn subq_get(&self, key: usize, ast: &Select) -> Option<Rc<SubqEntry>> {
        let entry = self.subq.borrow().get(&key).cloned()?;
        if entry.ast == *ast {
            Some(entry)
        } else {
            None
        }
    }

    /// Insert a fresh entry; a replaced entry is retired, not dropped.
    pub fn subq_insert(&self, key: usize, entry: Rc<SubqEntry>) {
        if let Some(old) = self.subq.borrow_mut().insert(key, entry) {
            self.retired.borrow_mut().push(old);
        }
    }
}
