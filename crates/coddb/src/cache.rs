//! Per-statement plan / binding / result caches.
//!
//! A statement owns one [`StmtCaches`] (inside [`crate::exec::EngineCtx`],
//! which [`crate::Database`] rebuilds per statement — so every cache is
//! invalidated at statement boundaries, and DML between statements can
//! never leak stale results). Three layers:
//!
//! 1. **Subquery plans** ([`SubqEntry::plan`]): `exec::exec_subquery`
//!    previously re-planned a subquery on every evaluation — once per
//!    outer row for correlated predicates. Plans are now compiled once
//!    per statement, keyed by the subquery AST's heap address and
//!    verified against a stored AST clone (the allocator may reuse an
//!    address within a statement; a stale hit must never be trusted).
//! 2. **Bindings**: clause expressions that live inside a retained plan
//!    (or the statement AST) are bound once per statement instead of once
//!    per operator instantiation — see `exec::Prepared` and the
//!    projection / grouped-binding entries here. Pointer-keyed caching is
//!    sound because every plan whose expressions serve as keys is kept
//!    alive for the whole statement: the statement AST and catalog
//!    outlive execution, subquery plans are owned by this cache, and
//!    replaced subquery entries are parked in `retired` rather than
//!    dropped, so a key's address is never freed (hence never reused)
//!    mid-statement.
//! 3. **Results** ([`SubqEntry::result`]): a subquery that read no outer
//!    column during a full evaluation is non-correlated — its output is a
//!    deterministic function of table state, which cannot change within a
//!    statement — so the whole result relation is memoized. Correlation
//!    is observed at runtime (`EngineCtx::min_frame_read`), which also
//!    keeps the `TidbCorrelatedNameCollision` mutant honest: when the
//!    mutant redirects a binding to an outer frame, the read is tracked
//!    and memoization is off.
//!
//! The caches are bypassed entirely in [`crate::exec::BindMode::PerRow`]
//! (the benchmarking baseline re-binds per row by design).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::ast::{Expr, Select};
use crate::bind::{AggSpec, BoundExpr};
use crate::plan::SelectPlan;
use crate::value::Relation;

/// One cached subquery: the compiled plan plus, once an evaluation proves
/// the subquery non-correlated, the memoized result relation.
pub(crate) struct SubqEntry {
    /// AST identity check for the pointer key (see module docs).
    pub ast: Select,
    /// CTE names visible when the plan was compiled. A plan is a function
    /// of the AST *and* this set (a name may resolve to a CTE scan in one
    /// scope and a base table in another), so a hit must match both.
    pub cte_names: std::collections::BTreeSet<String>,
    pub plan: Rc<SelectPlan>,
    pub result: RefCell<Option<Rc<Relation>>>,
}

/// Compiled projection of a non-aggregated select core: expanded output
/// columns plus each item's expression (owned here — `expand_items`
/// builds temporaries) and its bound form.
pub(crate) struct ProjBindings {
    pub columns: Vec<String>,
    pub exprs: Vec<Expr>,
    pub bound: Vec<Rc<BoundExpr>>,
}

/// Compiled grouped execution state: resolved group keys, projection and
/// HAVING bound through one binder, and the aggregate slot table.
pub(crate) struct GroupedBindings {
    pub group_exprs: Vec<Expr>,
    pub group_bound: Vec<Rc<BoundExpr>>,
    pub columns: Vec<String>,
    pub bound_projs: Vec<BoundExpr>,
    pub bound_having: Option<BoundExpr>,
    pub agg_specs: Vec<AggSpec>,
}

/// A pointer-keyed binding cache (see [`get_or_build`]).
pub(crate) type PtrCache<T> = RefCell<HashMap<usize, Rc<T>>>;

/// The single get-or-build used by every pointer-keyed binding cache.
/// `cacheable` must come from `EngineCtx::bindings_cacheable` — it owns
/// the soundness gate (depth > 0, so the site re-executes and its plan is
/// retained; never the PerRow baseline, whose plans are not retained and
/// whose addresses may be reused mid-statement).
pub(crate) fn get_or_build<T>(
    map: &PtrCache<T>,
    cacheable: bool,
    key: usize,
    build: impl FnOnce() -> crate::error::Result<Rc<T>>,
) -> crate::error::Result<Rc<T>> {
    if !cacheable {
        return build();
    }
    if let Some(v) = map.borrow().get(&key).cloned() {
        return Ok(v);
    }
    let v = build()?;
    map.borrow_mut().insert(key, Rc::clone(&v));
    Ok(v)
}

/// All per-statement caches. Single-threaded by design, like the rest of
/// the engine context.
#[derive(Default)]
pub(crate) struct StmtCaches {
    subq: RefCell<HashMap<usize, Rc<SubqEntry>>>,
    /// Clause expressions, keyed by AST node address.
    pub bound: PtrCache<BoundExpr>,
    /// Plain projections, keyed by core-plan address.
    pub proj: PtrCache<ProjBindings>,
    /// Grouped-execution state, keyed by core-plan address.
    pub grouped: PtrCache<GroupedBindings>,
    /// Hash-join key bindings (left-side, right-side), keyed by the
    /// plan's `hash_keys` buffer address.
    pub join_keys: PtrCache<(Vec<BoundExpr>, Vec<BoundExpr>)>,
    /// Graveyard for replaced subquery entries (address-stability, see
    /// module docs).
    retired: RefCell<Vec<Rc<SubqEntry>>>,
}

impl StmtCaches {
    /// Verified lookup: the entry counts only if the stored AST still
    /// matches what lives at the key address.
    pub fn subq_get(&self, key: usize, ast: &Select) -> Option<Rc<SubqEntry>> {
        let entry = self.subq.borrow().get(&key).cloned()?;
        if entry.ast == *ast {
            Some(entry)
        } else {
            None
        }
    }

    /// Insert a fresh entry; a replaced entry is retired, not dropped.
    pub fn subq_insert(&self, key: usize, entry: Rc<SubqEntry>) {
        if let Some(old) = self.subq.borrow_mut().insert(key, entry) {
            self.retired.borrow_mut().push(old);
        }
    }
}
