//! FROM-context and query construction (step ④ of Figure 1).
//!
//! The CODDTest oracle needs the FROM clause *before* generating φ: for
//! dependent expressions the auxiliary query must replicate the original
//! query's joins (§3.2). [`gen_from_context`] produces a reusable FROM
//! tree plus its visible column scope; [`build_count_query`] /
//! [`build_projection_query`] wrap a predicate into the original-query
//! shapes used by the oracles.

use coddb::ast::{
    BinaryOp, Expr, JoinKind, OrderItem, Select, SelectCore, SelectItem, SortOrder, TableExpr,
};
use coddb::value::DataType;
use coddb::Dialect;
use rand::{Rng, RngExt};

use crate::{ColumnInfo, GenConfig, SchemaInfo};

/// A generated FROM clause with its visible columns.
#[derive(Debug, Clone)]
pub struct FromContext {
    pub table_expr: TableExpr,
    /// Visible columns, qualified by alias.
    pub scope: Vec<ColumnInfo>,
    /// (alias, underlying relation name) pairs, in join order.
    pub relations: Vec<(String, String)>,
    pub has_join: bool,
    pub join_kind: Option<JoinKind>,
}

/// Generate a FROM context: one table, or a two-table join when allowed.
pub fn gen_from_context(
    rng: &mut (impl Rng + ?Sized),
    schema: &SchemaInfo,
    config: &GenConfig,
    dialect: Dialect,
) -> FromContext {
    let tables = &schema.tables;
    assert!(!tables.is_empty(), "state generator always creates a table");
    let first = &tables[rng.random_range(0..tables.len())];

    let join = config.allow_joins && rng.random_bool(0.4);
    if !join {
        let alias = first.name.clone();
        // SQLite's INDEXED BY forces an index scan (Listing 1 relies on
        // this to reach the planner's indexed path).
        let indexed_by = if dialect.supports_indexed_by() && !first.is_view && rng.random_bool(0.35)
        {
            let idxs = schema.indexes_for(&first.name);
            if idxs.is_empty() {
                None
            } else {
                Some(idxs[rng.random_range(0..idxs.len())].to_string())
            }
        } else {
            None
        };
        return FromContext {
            table_expr: TableExpr::Named {
                name: first.name.clone(),
                alias: None,
                indexed_by,
            },
            scope: first.columns_as(&alias),
            relations: vec![(alias, first.name.clone())],
            has_join: false,
            join_kind: None,
        };
    }

    // Prefer joining against a view when one exists (views behind joins
    // are a distinct bug nest — Listing 8).
    let second = match tables.iter().find(|t| t.is_view) {
        Some(view) if rng.random_bool(0.4) => view,
        _ => &tables[rng.random_range(0..tables.len())],
    };
    // Distinct aliases even when joining a table with itself.
    let (a1, a2) = if first.name == second.name {
        ("j0".to_string(), "j1".to_string())
    } else {
        (first.name.clone(), second.name.clone())
    };
    let left = TableExpr::Named {
        name: first.name.clone(),
        alias: if a1 == first.name {
            None
        } else {
            Some(a1.clone())
        },
        indexed_by: None,
    };
    let right = TableExpr::Named {
        name: second.name.clone(),
        alias: if a2 == second.name {
            None
        } else {
            Some(a2.clone())
        },
        indexed_by: None,
    };
    let kind = [
        JoinKind::Inner,
        JoinKind::Left,
        JoinKind::Cross,
        JoinKind::Full,
    ][rng.random_range(0..4)];

    let mut scope = first.columns_as(&a1);
    scope.extend(second.columns_as(&a2));

    let on = if kind == JoinKind::Cross {
        None
    } else {
        Some(gen_join_condition(
            rng,
            &first.columns_as(&a1),
            &second.columns_as(&a2),
            dialect,
        ))
    };

    let mut table_expr = TableExpr::Join {
        left: Box::new(left),
        right: Box::new(right),
        kind,
        on,
    };
    let mut relations = vec![(a1, first.name.clone()), (a2, second.name.clone())];

    // Occasionally chain one or two more tables (deep join pipelines are
    // their own bug nest — e.g. the DuckDB multi-join hang class).
    let mut extra = 0;
    while extra < 2 && rng.random_bool(0.15) {
        let next = &tables[rng.random_range(0..tables.len())];
        let alias = format!("j{}", relations.len());
        let next_cols = next.columns_as(&alias);
        let on = gen_join_condition(rng, &scope, &next_cols, dialect);
        table_expr = TableExpr::Join {
            left: Box::new(table_expr),
            right: Box::new(TableExpr::Named {
                name: next.name.clone(),
                alias: Some(alias.clone()),
                indexed_by: None,
            }),
            kind: JoinKind::Inner,
            on: Some(on),
        };
        scope.extend(next_cols);
        relations.push((alias, next.name.clone()));
        extra += 1;
    }

    FromContext {
        table_expr,
        scope,
        relations,
        has_join: true,
        join_kind: Some(kind),
    }
}

/// An equality/comparison join condition over compatible column pairs, or
/// a constant-true condition if no pair lines up.
pub fn gen_join_condition(
    rng: &mut (impl Rng + ?Sized),
    left: &[ColumnInfo],
    right: &[ColumnInfo],
    dialect: Dialect,
) -> Expr {
    let mut pairs = Vec::new();
    for l in left {
        for r in right {
            let ok = l.ty == r.ty
                || (matches!(l.ty, DataType::Int | DataType::Real)
                    && matches!(r.ty, DataType::Int | DataType::Real))
                || (!dialect.strict_types() && (l.ty == DataType::Any || r.ty == DataType::Any));
            if ok {
                pairs.push((l.clone(), r.clone()));
            }
        }
    }
    if pairs.is_empty() || rng.random_bool(0.15) {
        return if dialect.strict_types() {
            Expr::lit(true)
        } else {
            Expr::lit(1i64)
        };
    }
    let (l, r) = pairs[rng.random_range(0..pairs.len())].clone();
    let op = [BinaryOp::Eq, BinaryOp::Eq, BinaryOp::Lt, BinaryOp::Ge][rng.random_range(0..4)];
    Expr::bin(
        op,
        Expr::col(l.table, l.column),
        Expr::col(r.table, r.column),
    )
}

/// `SELECT COUNT(*) FROM <from> WHERE <pred>` — the original-query shape
/// used by NoREC and (often) CODDTest.
pub fn build_count_query(from: &FromContext, where_clause: Option<Expr>) -> Select {
    Select::from_core(SelectCore {
        items: vec![SelectItem::Expr {
            expr: Expr::count_star(),
            alias: None,
        }],
        from: Some(from.table_expr.clone()),
        where_clause,
        ..SelectCore::default()
    })
}

/// `SELECT <all scope columns> FROM <from> WHERE <pred>` with explicit
/// qualified items (stable output column order for multiset comparison).
pub fn build_projection_query(from: &FromContext, where_clause: Option<Expr>) -> Select {
    let items = from
        .scope
        .iter()
        .map(|c| SelectItem::Expr {
            expr: Expr::col(c.table.clone(), c.column.clone()),
            alias: None,
        })
        .collect();
    Select::from_core(SelectCore {
        items,
        from: Some(from.table_expr.clone()),
        where_clause,
        ..SelectCore::default()
    })
}

/// `SELECT alias.* FROM <from> WHERE <pred>` — a per-table wildcard
/// (Listing 6-style projections; also exercises wildcard expansion over
/// outer joins).
pub fn build_table_wildcard_query(
    from: &FromContext,
    alias: &str,
    where_clause: Option<Expr>,
) -> Select {
    Select::from_core(SelectCore {
        items: vec![SelectItem::TableWildcard(alias.to_string())],
        from: Some(from.table_expr.clone()),
        where_clause,
        ..SelectCore::default()
    })
}

/// The column name of a predicate's leading `col <cmp> _` conjunct, if
/// it has one (descending the left spine of top-level ANDs).
fn leading_cmp_column(pred: &Expr) -> Option<String> {
    match pred {
        Expr::Binary {
            op: BinaryOp::And,
            left,
            ..
        } => leading_cmp_column(left),
        Expr::Binary { op, left, right } if op.is_comparison() => match (&**left, &**right) {
            (Expr::Column(c), _) | (_, Expr::Column(c)) => Some(c.column.clone()),
            _ => None,
        },
        _ => None,
    }
}

/// Pick randomly between the count, projection and table-wildcard shapes.
pub fn build_random_query(
    rng: &mut (impl Rng + ?Sized),
    from: &FromContext,
    where_clause: Option<Expr>,
) -> Select {
    if from.has_join && rng.random_bool(0.15) {
        let (alias, _) = &from.relations[rng.random_range(0..from.relations.len())];
        return build_table_wildcard_query(from, alias, where_clause);
    }
    if rng.random_bool(0.5) {
        build_count_query(from, where_clause)
    } else if !from.has_join && rng.random_bool(0.3) {
        // `SELECT * .. ORDER BY col LIMIT k` — the one projection shape
        // whose sort an ordered seek can eliminate (wildcard items, bare
        // sort key resolved by output name). The limited multiset depends
        // on sort direction, so ordered-seek mutants become visible to
        // multiset-comparing oracles; ties stay deterministic because the
        // sort is stable over storage order and an order-satisfying seek
        // emits key groups in that same storage order. Prefer ordering by
        // the leading WHERE conjunct's column: when that conjunct is (or
        // folds to) a seek probe, this sort is exactly the one the seek
        // can absorb.
        let lead = where_clause
            .as_ref()
            .and_then(leading_cmp_column)
            .filter(|_| rng.random_bool(0.7));
        let name = match lead {
            Some(n) => n,
            None => {
                let c = &from.scope[rng.random_range(0..from.scope.len())];
                c.column.clone()
            }
        };
        let order = if rng.random() {
            SortOrder::Asc
        } else {
            SortOrder::Desc
        };
        let mut q = Select::from_core(SelectCore {
            items: vec![SelectItem::Wildcard],
            from: Some(from.table_expr.clone()),
            where_clause,
            ..SelectCore::default()
        });
        q.order_by = vec![OrderItem {
            expr: Expr::bare_col(name),
            order,
        }];
        q.limit = Some(Expr::lit(rng.random_range(1i64..5)));
        q
    } else {
        build_projection_query(from, where_clause)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::generate_state;
    use coddb::Database;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_contexts_execute_everywhere() {
        for dialect in Dialect::ALL {
            for seed in 0..40u64 {
                let mut rng = StdRng::seed_from_u64(seed);
                let cfg = GenConfig::default();
                let (stmts, schema) = generate_state(&mut rng, dialect, &cfg);
                let mut db = Database::new(dialect);
                for s in &stmts {
                    db.execute(s).unwrap();
                }
                let from = gen_from_context(&mut rng, &schema, &cfg, dialect);
                let q = build_projection_query(&from, None);
                match db.query(&q) {
                    Ok(rel) => assert_eq!(rel.columns.len(), from.scope.len()),
                    Err(e) => assert_eq!(
                        e.severity(),
                        coddb::Severity::Expected,
                        "{dialect} seed {seed}: {q} -> {e}"
                    ),
                }
            }
        }
    }

    #[test]
    fn self_join_gets_distinct_aliases() {
        // Force generation until a self join appears; aliases must differ.
        let cfg = GenConfig {
            max_tables: 1,
            ..GenConfig::default()
        };
        let mut seen_self_join = false;
        for seed in 0..200u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (_, schema) = generate_state(&mut rng, Dialect::Sqlite, &cfg);
            let from = gen_from_context(&mut rng, &schema, &cfg, Dialect::Sqlite);
            if from.has_join && from.relations[0].1 == from.relations[1].1 {
                seen_self_join = true;
                assert_ne!(from.relations[0].0, from.relations[1].0);
            }
        }
        assert!(seen_self_join, "self joins should occur");
    }

    #[test]
    fn count_query_shape() {
        let from = FromContext {
            table_expr: TableExpr::named("t0"),
            scope: vec![ColumnInfo {
                table: "t0".into(),
                column: "c0".into(),
                ty: DataType::Int,
            }],
            relations: vec![("t0".into(), "t0".into())],
            has_join: false,
            join_kind: None,
        };
        let q = build_count_query(&from, Some(Expr::lit(1i64)));
        assert_eq!(q.to_string(), "SELECT COUNT(*) FROM t0 WHERE 1");
        let p = build_projection_query(&from, None);
        assert_eq!(p.to_string(), "SELECT t0.c0 FROM t0");
    }
}
