//! Random database-state generation (step ① of Figure 1).
//!
//! Emits `CREATE TABLE` / `INSERT` / `CREATE INDEX` / `CREATE VIEW`
//! statements, guaranteeing every table holds at least one row (the paper:
//! "non-empty tables ensure that at least one row is available for us to
//! apply constant folding"). Returns both the statements and a
//! [`SchemaInfo`] the expression/query generators consult.

use coddb::ast::{BinaryOp, ColumnDef, Expr, Select, SelectCore, SelectItem, Statement, TableExpr};
use coddb::value::{DataType, Value};
use coddb::Dialect;
use rand::{Rng, RngExt};

use crate::{GenConfig, SchemaInfo, TableInfo};

/// Generate a random database state for `dialect`.
pub fn generate_state(
    rng: &mut (impl Rng + ?Sized),
    dialect: Dialect,
    config: &GenConfig,
) -> (Vec<Statement>, SchemaInfo) {
    let mut stmts = Vec::new();
    let mut schema = SchemaInfo {
        dialect: Some(dialect),
        ..SchemaInfo::default()
    };

    let n_tables = rng.random_range(1..=config.max_tables.max(1));
    for ti in 0..n_tables {
        let name = format!("t{ti}");
        let n_cols = rng.random_range(1..=4);
        let mut columns = Vec::with_capacity(n_cols);
        let mut defs = Vec::with_capacity(n_cols);
        for ci in 0..n_cols {
            let ty = random_column_type(rng, dialect);
            let col = format!("c{ci}");
            columns.push((col.clone(), ty));
            defs.push(ColumnDef {
                name: col,
                ty,
                not_null: false,
            });
        }
        stmts.push(Statement::CreateTable {
            name: name.clone(),
            columns: defs,
            if_not_exists: false,
        });

        // Insert 1..=max_rows rows (never zero). Some tables draw their
        // integers from a 5-value domain: duplicate keys are what make
        // equality seeks, GROUP BY and join fan-out interesting, and a
        // wide domain almost never collides within a handful of rows.
        let narrow = rng.random_bool(0.35);
        let n_rows = rng.random_range(1..=config.max_rows.max(1));
        let mut rows = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            let row: Vec<Expr> = columns
                .iter()
                .map(|(_, ty)| {
                    let mut v = random_value(rng, *ty);
                    if narrow {
                        if let Value::Int(i) = v {
                            v = Value::Int(i.rem_euclid(5));
                        }
                    }
                    Expr::Literal(v)
                })
                .collect();
            rows.push(row);
        }
        stmts.push(Statement::Insert {
            table: name.clone(),
            columns: Vec::new(),
            source: coddb::ast::InsertSource::Values(rows),
        });

        // Maybe an index: plain column or simple expression (Listing 1's
        // `CREATE INDEX i0 ON t0 (c0 > 0)` shape).
        if rng.random_bool(config.index_probability) {
            let idx_name = format!("i{ti}");
            let (col, ty) = &columns[rng.random_range(0..columns.len())];
            // Occasionally index a concatenation of a TEXT and a REAL
            // column — an affinity-sensitive indexed expression.
            let text_col = columns.iter().find(|(_, t)| *t == DataType::Text);
            let real_col = columns.iter().find(|(_, t)| *t == DataType::Real);
            let expr = if let (Some((tc, _)), Some((rc, _)), true) =
                (text_col, real_col, rng.random_bool(0.25))
            {
                Expr::bin(
                    BinaryOp::Concat,
                    Expr::bare_col(tc.clone()),
                    Expr::bare_col(rc.clone()),
                )
            } else if matches!(ty, DataType::Int | DataType::Real | DataType::Any)
                && rng.random_bool(0.4)
            {
                Expr::bin(
                    BinaryOp::Gt,
                    Expr::bare_col(col.clone()),
                    Expr::lit(rng.random_range(-5i64..5)),
                )
            } else {
                Expr::bare_col(col.clone())
            };
            // Occasionally widen a bare-column key into a two-column
            // prefix — the seek path's multi-column shapes.
            let mut exprs = vec![expr];
            if matches!(&exprs[0], Expr::Column(_)) && columns.len() > 1 && rng.random_bool(0.3) {
                let (second, _) = &columns[rng.random_range(0..columns.len())];
                if !second.eq_ignore_ascii_case(col) {
                    exprs.push(Expr::bare_col(second.clone()));
                }
            }
            let rekey = match &exprs[0] {
                Expr::Column(c) if rng.random_bool(0.7) => columns
                    .iter()
                    .find(|(n, t)| n == &c.column && *t == DataType::Int)
                    .map(|(n, _)| n.clone()),
                _ => None,
            };
            if let Expr::Column(c) = &exprs[0] {
                schema
                    .indexed_columns
                    .push((name.clone(), c.column.clone()));
            }
            stmts.push(Statement::CreateIndex {
                name: idx_name.clone(),
                table: name.clone(),
                exprs,
                unique: false,
            });
            schema.indexes.push((idx_name, name.clone()));
            // Count-preserving re-key of the indexed column: every entry
            // in the fresh index goes stale under a maintenance mutant,
            // while row count and column types are untouched. Queries
            // that later seek this index then diverge from scans.
            if let Some(col) = rekey {
                stmts.push(Statement::Update {
                    table: name.clone(),
                    sets: vec![(
                        col.clone(),
                        Expr::bin(BinaryOp::Add, Expr::bare_col(col), Expr::lit(1i64)),
                    )],
                    where_clause: None,
                });
            }
        }

        schema.tables.push(TableInfo {
            name,
            columns,
            is_view: false,
            row_count: n_rows,
        });
    }

    // Maybe a view over one of the tables: either a simple projection or
    // an aggregate-with-GROUP-BY view (feeding the Listing-1 shape).
    if rng.random_bool(config.view_probability) {
        let base_idx = rng.random_range(0..schema.tables.len());
        let base = schema.tables[base_idx].clone();
        let view_name = "v0".to_string();
        let aggregate = rng.random_bool(0.4);
        let (items, view_cols): (Vec<SelectItem>, Vec<(String, DataType)>) = if aggregate {
            let (col, cty) = pick_numericish(&base, rng);
            (
                vec![SelectItem::Expr {
                    expr: Expr::Agg {
                        func: coddb::ast::AggFunc::Avg,
                        arg: Some(Box::new(Expr::col(base.name.clone(), col.clone()))),
                        distinct: false,
                    },
                    alias: None,
                }],
                vec![("c0".to_string(), real_or(cty))],
            )
        } else {
            let mut items = Vec::new();
            let mut cols = Vec::new();
            for (i, (c, ty)) in base.columns.iter().enumerate() {
                items.push(SelectItem::Expr {
                    expr: Expr::col(base.name.clone(), c.clone()),
                    alias: None,
                });
                cols.push((format!("c{i}"), *ty));
            }
            (items, cols)
        };
        let group_by = if aggregate {
            let (col, _) = pick_numericish(&base, rng);
            vec![Expr::bin(
                BinaryOp::Gt,
                Expr::lit(rng.random_range(-3i64..3)),
                Expr::col(base.name.clone(), col),
            )]
        } else {
            Vec::new()
        };
        let query = Select::from_core(SelectCore {
            items,
            from: Some(TableExpr::named(base.name.clone())),
            group_by,
            ..SelectCore::default()
        });
        stmts.push(Statement::CreateView {
            name: view_name.clone(),
            columns: view_cols.iter().map(|(c, _)| c.clone()).collect(),
            query,
        });
        // Aggregate views over a non-empty table always hold >= 1 row;
        // projection views mirror the base table.
        let row_count = if aggregate { 1 } else { base.row_count };
        schema.tables.push(TableInfo {
            name: view_name,
            columns: view_cols,
            is_view: true,
            row_count,
        });
    }

    (stmts, schema)
}

fn real_or(ty: DataType) -> DataType {
    // AVG returns REAL except over pure-NULL input.
    match ty {
        DataType::Int | DataType::Real => DataType::Real,
        other => other,
    }
}

fn pick_numericish(t: &TableInfo, rng: &mut (impl Rng + ?Sized)) -> (String, DataType) {
    let numeric: Vec<&(String, DataType)> = t
        .columns
        .iter()
        .filter(|(_, ty)| matches!(ty, DataType::Int | DataType::Real | DataType::Any))
        .collect();
    if numeric.is_empty() {
        let (c, ty) = &t.columns[rng.random_range(0..t.columns.len())];
        (c.clone(), *ty)
    } else {
        let (c, ty) = numeric[rng.random_range(0..numeric.len())];
        (c.clone(), *ty)
    }
}

/// Pick a random column type legal for the dialect.
pub fn random_column_type(rng: &mut (impl Rng + ?Sized), dialect: Dialect) -> DataType {
    let roll = rng.random_range(0..100);
    match roll {
        0..=39 => DataType::Int,
        40..=59 => DataType::Real,
        60..=84 => DataType::Text,
        85..=92 if dialect.strict_types() => DataType::Bool,
        85..=92 => DataType::Int,
        _ if dialect.allows_untyped_columns() => DataType::Any,
        _ => DataType::Int,
    }
}

/// Random literal value of the given type.
///
/// Floats avoid extreme magnitudes and non-finite values — the paper's
/// false-alarm mitigation ("we avoid these in practice by eschewing test
/// cases with small or large float-point values").
pub fn random_value(rng: &mut (impl Rng + ?Sized), ty: DataType) -> Value {
    if rng.random_bool(0.12) {
        return Value::Null;
    }
    match ty {
        DataType::Int => {
            // Occasionally emit an INT8-range literal: it exercises the
            // Listing-9 bug class and SQLancer likewise mixes magnitudes.
            if rng.random_bool(0.1) {
                Value::Int(rng.random_range(4_294_967_296i64..9_000_000_000_000_000_000))
            } else {
                Value::Int(rng.random_range(-100i64..100))
            }
        }
        DataType::Real => {
            // Decimal tenths: non-dyadic, so f32/f64 rounding genuinely
            // differs (needed to observe precision-corrupting mutants)
            // while magnitudes stay tame.
            let v = rng.random_range(-10_000i64..10_000) as f64 / 10.0;
            Value::Real(v)
        }
        DataType::Text => {
            let len = rng.random_range(0..4);
            let s: String = (0..len)
                .map(|_| {
                    let alphabet = b"abcxyzAB%_0 ";
                    alphabet[rng.random_range(0..alphabet.len())] as char
                })
                .collect();
            Value::Text(s)
        }
        DataType::Bool => Value::Bool(rng.random()),
        DataType::Any => {
            let sub = [DataType::Int, DataType::Real, DataType::Text][rng.random_range(0..3)];
            random_value(rng, sub)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coddb::Database;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_states_execute_on_every_dialect() {
        for dialect in Dialect::ALL {
            for seed in 0..30u64 {
                let mut rng = StdRng::seed_from_u64(seed);
                let (stmts, schema) = generate_state(&mut rng, dialect, &GenConfig::default());
                let mut db = Database::new(dialect);
                for s in &stmts {
                    db.execute(s).unwrap_or_else(|e| {
                        panic!("state statement failed on {dialect} (seed {seed}): {s}\n{e}")
                    });
                }
                // Every base table is non-empty.
                for t in schema.base_tables() {
                    let rel = db
                        .query_sql(&format!("SELECT COUNT(*) FROM {}", t.name))
                        .unwrap();
                    let n = rel.scalar().unwrap().as_i64().unwrap();
                    assert!(n >= 1, "table {} empty (seed {seed})", t.name);
                    assert_eq!(n as usize, t.row_count, "row_count model out of sync");
                }
            }
        }
    }

    #[test]
    fn schema_model_matches_catalog() {
        let mut rng = StdRng::seed_from_u64(7);
        let (stmts, schema) = generate_state(&mut rng, Dialect::Sqlite, &GenConfig::default());
        let mut db = Database::new(Dialect::Sqlite);
        for s in &stmts {
            db.execute(s).unwrap();
        }
        for t in &schema.tables {
            if t.is_view {
                assert!(db.catalog().view(&t.name).is_some());
            } else {
                let cat_t = db.catalog().table(&t.name).unwrap();
                assert_eq!(cat_t.columns.len(), t.columns.len());
            }
        }
        for (i, t) in &schema.indexes {
            assert!(db.catalog().index(i).is_some());
            assert_eq!(&db.catalog().index(i).unwrap().table, t);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let gen = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let (stmts, _) = generate_state(&mut rng, Dialect::Tidb, &GenConfig::default());
            stmts.iter().map(|s| s.to_string()).collect::<Vec<_>>()
        };
        assert_eq!(gen(42), gen(42));
        assert_ne!(gen(42), gen(43));
    }

    #[test]
    fn random_values_respect_types() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            match random_value(&mut rng, DataType::Real) {
                Value::Real(r) => assert!(r.is_finite() && r.abs() < 1e6),
                Value::Null => {}
                other => panic!("unexpected {other:?}"),
            }
            match random_value(&mut rng, DataType::Bool) {
                Value::Bool(_) | Value::Null => {}
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
