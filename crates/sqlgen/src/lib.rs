//! # sqlgen — random SQL generation for the CODDTest reproduction
//!
//! Plays the role SQLancer's rule-based generators play in the paper:
//!
//! * [`state`] generates a random, *non-empty* database state
//!   (`CREATE TABLE` / `INSERT` / `CREATE INDEX` / `CREATE VIEW`) together
//!   with a [`SchemaInfo`] model of what it created,
//! * [`expr`] generates random typed expressions with a `MaxDepth` knob
//!   (default 3, as in SQLancer) and full subquery support — including the
//!   classification into *independent* and *dependent* expressions the
//!   CODDTest oracle needs (Algorithm 1, line 2),
//! * [`query`] generates FROM contexts (with joins), SELECT queries around
//!   a given predicate, and the DML statements the DQE baseline needs.
//!
//! All generation is deterministic given the caller's RNG.

pub mod expr;
pub mod query;
pub mod state;

use coddb::value::DataType;
use coddb::Dialect;

/// Generation knobs.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum expression depth (the paper's `MaxDepth`, default 3).
    pub max_depth: u32,
    /// Allow subqueries inside generated expressions.
    pub allow_subqueries: bool,
    /// Allow joins in generated FROM clauses.
    pub allow_joins: bool,
    /// Maximum number of tables the state generator creates.
    pub max_tables: usize,
    /// Maximum rows inserted per table (at least one row is guaranteed).
    pub max_rows: usize,
    /// Probability of creating an index per table.
    pub index_probability: f64,
    /// Probability of creating a view.
    pub view_probability: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_depth: 3,
            allow_subqueries: true,
            allow_joins: true,
            max_tables: 3,
            max_rows: 6,
            index_probability: 0.5,
            view_probability: 0.4,
        }
    }
}

impl GenConfig {
    /// The "CODDTest & Expression" configuration of Table 3 (no
    /// subqueries).
    pub fn expressions_only() -> Self {
        GenConfig {
            allow_subqueries: false,
            ..GenConfig::default()
        }
    }

    /// Configuration with a specific `MaxDepth` (Figures 2 and 3).
    pub fn with_max_depth(max_depth: u32) -> Self {
        GenConfig {
            max_depth,
            ..GenConfig::default()
        }
    }
}

/// One column of a generated table or view.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnInfo {
    /// Alias or table name the column is addressed through.
    pub table: String,
    pub column: String,
    pub ty: DataType,
}

/// A generated table (or view).
#[derive(Debug, Clone)]
pub struct TableInfo {
    pub name: String,
    pub columns: Vec<(String, DataType)>,
    pub is_view: bool,
    pub row_count: usize,
}

impl TableInfo {
    /// Columns qualified by an alias.
    pub fn columns_as(&self, alias: &str) -> Vec<ColumnInfo> {
        self.columns
            .iter()
            .map(|(c, ty)| ColumnInfo {
                table: alias.to_string(),
                column: c.clone(),
                ty: *ty,
            })
            .collect()
    }
}

/// The generator-side model of the database state.
#[derive(Debug, Clone, Default)]
pub struct SchemaInfo {
    pub tables: Vec<TableInfo>,
    /// (index name, table name) pairs.
    pub indexes: Vec<(String, String)>,
    /// (table name, column name) pairs for bare-column index keys — the
    /// columns the planner's ordered seeks can consume probes against.
    pub indexed_columns: Vec<(String, String)>,
    pub dialect: Option<Dialect>,
}

impl SchemaInfo {
    /// Base tables only (DML targets).
    pub fn base_tables(&self) -> Vec<&TableInfo> {
        self.tables.iter().filter(|t| !t.is_view).collect()
    }

    pub fn table(&self, name: &str) -> Option<&TableInfo> {
        self.tables
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(name))
    }

    /// Names of indexes on the given table.
    pub fn indexes_for(&self, table: &str) -> Vec<&str> {
        self.indexes
            .iter()
            .filter(|(_, t)| t.eq_ignore_ascii_case(table))
            .map(|(i, _)| i.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_defaults() {
        let c = GenConfig::default();
        assert_eq!(c.max_depth, 3, "SQLancer default MaxDepth");
        assert!(c.allow_subqueries);
    }

    #[test]
    fn expressions_only_disables_subqueries() {
        assert!(!GenConfig::expressions_only().allow_subqueries);
        assert_eq!(GenConfig::with_max_depth(9).max_depth, 9);
    }

    #[test]
    fn table_info_qualifies_columns() {
        let t = TableInfo {
            name: "t0".into(),
            columns: vec![("c0".into(), DataType::Int)],
            is_view: false,
            row_count: 1,
        };
        let cols = t.columns_as("x");
        assert_eq!(cols[0].table, "x");
        assert_eq!(cols[0].column, "c0");
    }
}
