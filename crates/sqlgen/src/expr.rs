//! Random typed expression generation (step ② of Figure 1).
//!
//! [`ExprGen`] produces expressions that are valid *by construction* for
//! the active dialect: strict-typing profiles get precisely typed operand
//! pairs and boolean predicates, flexible profiles may exploit implicit
//! casts (§3.3 of the paper). Columns referenced from the primary (outer)
//! scope are recorded — the `{cᵢ}` set of Algorithm 1 that classifies the
//! expression as *independent* (empty) or *dependent* (non-empty).

use coddb::ast::{
    AggFunc, BinaryOp, CompareOp, Expr, FuncName, Quantifier, Select, SelectCore, SelectItem,
    SortOrder, TableExpr,
};
use coddb::value::{DataType, Value};
use coddb::Dialect;
use rand::{Rng, RngExt};

use crate::state::random_value;
use crate::{ColumnInfo, GenConfig, SchemaInfo};

/// A generated expression plus the outer-scope columns it references.
#[derive(Debug, Clone)]
pub struct GeneratedExpr {
    pub expr: Expr,
    /// `{cᵢ}`: columns referenced from the outer context (deduplicated).
    pub refs: Vec<ColumnInfo>,
}

impl GeneratedExpr {
    /// Independent expressions yield constant results irrespective of the
    /// outer context (Algorithm 1, line 3).
    pub fn is_independent(&self) -> bool {
        self.refs.is_empty()
    }
}

/// Random expression generator over a fixed column scope.
pub struct ExprGen<'a> {
    dialect: Dialect,
    config: &'a GenConfig,
    schema: &'a SchemaInfo,
    scope: &'a [ColumnInfo],
    refs: Vec<ColumnInfo>,
}

impl<'a> ExprGen<'a> {
    pub fn new(
        dialect: Dialect,
        config: &'a GenConfig,
        schema: &'a SchemaInfo,
        scope: &'a [ColumnInfo],
    ) -> Self {
        ExprGen {
            dialect,
            config,
            schema,
            scope,
            refs: Vec::new(),
        }
    }

    /// Generate the expression φ that will undergo constant folding, with
    /// its reference set.
    pub fn gen_phi(&mut self, rng: &mut (impl Rng + ?Sized)) -> GeneratedExpr {
        self.refs.clear();
        let expr = self.gen_predicate(rng, self.config.max_depth);
        let mut refs = std::mem::take(&mut self.refs);
        refs.dedup_by(|a, b| a == b);
        // Full dedup (refs may interleave).
        let mut seen: Vec<ColumnInfo> = Vec::new();
        for r in refs {
            if !seen.contains(&r) {
                seen.push(r);
            }
        }
        GeneratedExpr { expr, refs: seen }
    }

    /// Generate a boolean-valued predicate (strict dialects require an
    /// explicitly boolean expression — §3.3).
    pub fn gen_predicate(&mut self, rng: &mut (impl Rng + ?Sized), depth: u32) -> Expr {
        if !self.dialect.strict_types() && depth > 0 && rng.random_bool(0.12) {
            // Flexible typing lets any numeric act as a predicate.
            return self.gen_expr(rng, DataType::Int, depth - 1);
        }
        self.gen_bool(rng, depth)
    }

    /// Generate an expression of the requested type.
    pub fn gen_expr(&mut self, rng: &mut (impl Rng + ?Sized), ty: DataType, depth: u32) -> Expr {
        match ty {
            DataType::Bool => self.gen_bool(rng, depth),
            DataType::Int => self.gen_int(rng, depth),
            DataType::Real => self.gen_real(rng, depth),
            DataType::Text => self.gen_text(rng, depth),
            DataType::Any => {
                let t = [DataType::Int, DataType::Real, DataType::Text][rng.random_range(0..3)];
                self.gen_expr(rng, t, depth)
            }
        }
    }

    // -- leaves ------------------------------------------------------------

    fn leaf(&mut self, rng: &mut (impl Rng + ?Sized), ty: DataType) -> Expr {
        // Prefer a column of the right type when one exists.
        let candidates: Vec<&ColumnInfo> = self
            .scope
            .iter()
            .filter(|c| {
                c.ty == ty
                    || (c.ty == DataType::Any && !self.dialect.strict_types())
                    || (ty == DataType::Real && c.ty == DataType::Int)
            })
            .collect();
        if !candidates.is_empty() && rng.random_bool(0.6) {
            let col = candidates[rng.random_range(0..candidates.len())].clone();
            self.refs.push(col.clone());
            return Expr::col(col.table, col.column);
        }
        Expr::Literal(random_value(rng, ty))
    }

    // -- boolean expressions ------------------------------------------------

    fn gen_bool(&mut self, rng: &mut (impl Rng + ?Sized), depth: u32) -> Expr {
        if depth == 0 {
            return if self.dialect.strict_types() {
                self.leaf(rng, DataType::Bool)
            } else {
                // Flexible profiles commonly use 0/1 integers as booleans.
                let mut e = self.leaf(rng, DataType::Int);
                if matches!(e, Expr::Literal(Value::Int(_))) {
                    e = Expr::lit(rng.random_range(0i64..2));
                }
                e
            };
        }
        let subqueries = self.config.allow_subqueries;
        // Seek-probe shape: `col <cmp> rhs` with the column bare on the
        // left — the sargable orientation the planner's ordered-index
        // seeks consume. With a non-correlated subquery on the right the
        // conjunct is NOT sargable until constant folding replaces the
        // subquery with a literal, so the folded query seeks where the
        // original scans — the asymmetry that lets the metamorphic
        // oracles observe index-path mutants at all.
        if rng.random_bool(0.2) && !self.scope.is_empty() {
            // Prefer a column an index key covers: probes on unindexed
            // columns never reach the seek machinery.
            let indexed: Vec<&ColumnInfo> = self
                .scope
                .iter()
                .filter(|c| {
                    self.schema.indexed_columns.iter().any(|(t, ic)| {
                        ic.eq_ignore_ascii_case(&c.column) && c.table.eq_ignore_ascii_case(t)
                    })
                })
                .collect();
            let col = if !indexed.is_empty() && rng.random_bool(0.8) {
                indexed[rng.random_range(0..indexed.len())].clone()
            } else {
                self.scope[rng.random_range(0..self.scope.len())].clone()
            };
            // Eq leads double-weighted: point seeks are where duplicate
            // handling and multi-key prefixes live.
            let op = [
                BinaryOp::Eq,
                BinaryOp::Eq,
                BinaryOp::Lt,
                BinaryOp::Le,
                BinaryOp::Gt,
                BinaryOp::Ge,
            ][rng.random_range(0..6)];
            let numeric = matches!(col.ty, DataType::Int | DataType::Any);
            let rhs = if subqueries && numeric && depth > 0 && rng.random_bool(0.6) {
                // MIN/MAX of the probed column itself folds to an actual
                // stored value — point probes then land on occupied (and
                // often duplicated) keys instead of missing the table.
                let self_agg = self
                    .schema
                    .tables
                    .iter()
                    .find(|t| t.name.eq_ignore_ascii_case(&col.table) && !t.is_view);
                match self_agg {
                    Some(t) if rng.random_bool(0.5) => {
                        let func = if rng.random() {
                            AggFunc::Max
                        } else {
                            AggFunc::Min
                        };
                        let q = Select::from_core(SelectCore {
                            items: vec![SelectItem::Expr {
                                expr: Expr::Agg {
                                    func,
                                    arg: Some(Box::new(Expr::col(
                                        t.name.clone(),
                                        col.column.clone(),
                                    ))),
                                    distinct: false,
                                },
                                alias: None,
                            }],
                            from: Some(TableExpr::named(t.name.clone())),
                            ..SelectCore::default()
                        });
                        Expr::Scalar(Box::new(q))
                    }
                    _ => Expr::Scalar(Box::new(self.gen_count_subquery(rng, depth - 1))),
                }
            } else {
                let ty = if col.ty == DataType::Any {
                    DataType::Int
                } else {
                    col.ty
                };
                // The planner only consumes non-NULL constants.
                loop {
                    match random_value(rng, ty) {
                        Value::Null => continue,
                        v => break Expr::Literal(v),
                    }
                }
            };
            self.refs.push(col.clone());
            return Expr::bin(op, Expr::col(col.table, col.column), rhs);
        }
        let roll = rng.random_range(0..100);
        match roll {
            0..=24 => {
                // Comparison. Strict dialects demand same-typed operands;
                // flexible ones occasionally mix types (implicit-cast
                // behaviour is a known bug nest — §3.3, Listing 11).
                let tyl = self.comparison_type(rng);
                let tyr = if !self.dialect.strict_types() && rng.random_bool(0.25) {
                    self.comparison_type(rng)
                } else {
                    tyl
                };
                let l = self.gen_expr(rng, tyl, depth - 1);
                let r = self.gen_expr(rng, tyr, depth - 1);
                let op = [
                    BinaryOp::Eq,
                    BinaryOp::Ne,
                    BinaryOp::Lt,
                    BinaryOp::Le,
                    BinaryOp::Gt,
                    BinaryOp::Ge,
                ][rng.random_range(0..6)];
                Expr::bin(op, l, r)
            }
            25..=36 => {
                let mut l = self.gen_bool(rng, depth - 1);
                let mut r = self.gen_bool(rng, depth - 1);
                // Inject literal TRUE/FALSE/NULL arms (SQLancer commonly
                // produces them, and several optimizer bug classes key on
                // constant arms of logical connectives).
                if rng.random_bool(0.25) {
                    let lit = self.bool_literal_leaf(rng);
                    if rng.random() {
                        l = lit;
                    } else {
                        r = lit;
                    }
                }
                let op = if rng.random() {
                    BinaryOp::And
                } else {
                    BinaryOp::Or
                };
                Expr::bin(op, l, r)
            }
            37..=42 => Expr::not(self.gen_bool(rng, depth - 1)),
            43..=49 => {
                let ty = self.comparison_type(rng);
                Expr::IsNull {
                    expr: Box::new(self.gen_expr(rng, ty, depth - 1)),
                    negated: rng.random(),
                }
            }
            50..=57 => {
                // BETWEEN over numerics. Flexible dialects occasionally
                // range-test a TEXT operand against numeric bounds (legal
                // under storage-class comparison; an affinity bug nest).
                let ty = if rng.random() {
                    DataType::Int
                } else {
                    DataType::Real
                };
                let operand_ty = if !self.dialect.strict_types() && rng.random_bool(0.25) {
                    DataType::Text
                } else {
                    ty
                };
                Expr::Between {
                    expr: Box::new(self.gen_expr(rng, operand_ty, depth - 1)),
                    low: Box::new(self.gen_expr(rng, ty, depth - 1)),
                    high: Box::new(self.gen_expr(rng, ty, depth - 1)),
                    negated: rng.random(),
                }
            }
            58..=65 => {
                // IN value list.
                let ty = self.comparison_type(rng);
                let expr = self.gen_expr(rng, ty, depth - 1);
                let n = rng.random_range(1..=3);
                let list = (0..n).map(|_| self.gen_expr(rng, ty, depth - 1)).collect();
                Expr::InList {
                    expr: Box::new(expr),
                    list,
                    negated: rng.random_bool(0.3),
                }
            }
            66..=71 => {
                // LIKE with a literal pattern.
                let expr = self.gen_text(rng, depth - 1);
                let pattern = Expr::Literal(Value::Text(self.gen_like_pattern(rng)));
                Expr::Like {
                    expr: Box::new(expr),
                    pattern: Box::new(pattern),
                    negated: rng.random_bool(0.3),
                }
            }
            72..=76 => {
                // Null-safe IS / IS NOT.
                let ty = self.comparison_type(rng);
                let l = self.gen_expr(rng, ty, depth - 1);
                let r = self.gen_expr(rng, ty, depth - 1);
                Expr::bin(
                    if rng.random() {
                        BinaryOp::Is
                    } else {
                        BinaryOp::IsNot
                    },
                    l,
                    r,
                )
            }
            77..=82 => {
                // CASE returning boolean. Conditions are sometimes bare
                // literals (`CASE WHEN NULL THEN ...` — the Listing 7
                // shape).
                let cond = if rng.random_bool(0.25) {
                    self.bool_literal_leaf(rng)
                } else {
                    self.gen_bool(rng, depth - 1)
                };
                let then = self.gen_bool(rng, depth - 1);
                let els = self.gen_bool(rng, depth - 1);
                Expr::Case {
                    operand: None,
                    whens: vec![(cond, then)],
                    else_expr: Some(Box::new(els)),
                }
            }
            83..=88 if subqueries => {
                // EXISTS.
                let q = self.gen_row_subquery(rng, None, depth.saturating_sub(1));
                Expr::Exists {
                    query: Box::new(q),
                    negated: rng.random_bool(0.3),
                }
            }
            89..=94 if subqueries => {
                // expr IN (subquery).
                let ty = self.comparison_type(rng);
                let expr = self.gen_expr(rng, ty, depth - 1);
                let q = self.gen_row_subquery(rng, Some(ty), depth.saturating_sub(1));
                Expr::InSubquery {
                    expr: Box::new(expr),
                    query: Box::new(q),
                    negated: rng.random_bool(0.3),
                }
            }
            95..=97 if subqueries && self.dialect.supports_quantified() => {
                let ty = self.comparison_type(rng);
                let expr = self.gen_expr(rng, ty, depth - 1);
                let q = self.gen_row_subquery(rng, Some(ty), depth.saturating_sub(1));
                let op = [CompareOp::Eq, CompareOp::Ne, CompareOp::Lt, CompareOp::Gt]
                    [rng.random_range(0..4)];
                Expr::Quantified {
                    op,
                    quantifier: if rng.random() {
                        Quantifier::Any
                    } else {
                        Quantifier::All
                    },
                    expr: Box::new(expr),
                    query: Box::new(q),
                }
            }
            98..=99 if subqueries => {
                // Scalar subquery compared with a literal.
                let (q, qty) = self.gen_scalar_subquery(rng, depth.saturating_sub(1));
                let rhs = Expr::Literal(random_value(rng, qty));
                let op = [BinaryOp::Eq, BinaryOp::Lt, BinaryOp::Ge][rng.random_range(0..3)];
                Expr::bin(op, Expr::Scalar(Box::new(q)), rhs)
            }
            _ => {
                // Fallback: plain comparison.
                let ty = self.comparison_type(rng);
                let l = self.gen_expr(rng, ty, depth - 1);
                let r = self.gen_expr(rng, ty, depth - 1);
                Expr::bin(BinaryOp::Eq, l, r)
            }
        }
    }

    fn comparison_type(&self, rng: &mut (impl Rng + ?Sized)) -> DataType {
        let tys = [DataType::Int, DataType::Int, DataType::Real, DataType::Text];
        tys[rng.random_range(0..tys.len())]
    }

    /// A boolean-ish literal: TRUE/FALSE (dialect-appropriate) or NULL.
    fn bool_literal_leaf(&self, rng: &mut (impl Rng + ?Sized)) -> Expr {
        match rng.random_range(0..5) {
            0 => Expr::null(),
            n if self.dialect.strict_types() => Expr::lit(n % 2 == 0),
            n => Expr::lit((n % 2) as i64),
        }
    }

    /// Reference an inner-scope column, randomly qualified or bare (bare
    /// references inside subqueries exercise name-resolution paths; the
    /// TiDB name-collision bug class lives there).
    fn inner_col(&self, rng: &mut (impl Rng + ?Sized), col: &ColumnInfo) -> Expr {
        if rng.random_bool(0.4) {
            Expr::bare_col(col.column.clone())
        } else {
            Expr::col(col.table.clone(), col.column.clone())
        }
    }

    fn gen_like_pattern(&self, rng: &mut (impl Rng + ?Sized)) -> String {
        let shapes = [
            "a%", "%b%", "_x%", "%", "ab", "%c", "a_c", "",
            // Pathological shapes: repeated wildcards and a dangling
            // escape (both are engine bug nests).
            "%%%a", "a\\",
        ];
        shapes[rng.random_range(0..shapes.len())].to_string()
    }

    // -- numeric / text expressions ------------------------------------------

    fn gen_int(&mut self, rng: &mut (impl Rng + ?Sized), depth: u32) -> Expr {
        if depth == 0 {
            return self.leaf(rng, DataType::Int);
        }
        let roll = rng.random_range(0..100);
        match roll {
            0..=34 => self.leaf(rng, DataType::Int),
            35..=59 => {
                let op = [BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul, BinaryOp::Mod]
                    [rng.random_range(0..4)];
                Expr::bin(
                    op,
                    self.gen_int(rng, depth - 1),
                    self.gen_int(rng, depth - 1),
                )
            }
            60..=66 => {
                // Fold negation of literals (the parser normalizes `-k`
                // to a literal, so generating the folded form keeps
                // render→parse round-trips exact).
                match self.gen_int(rng, depth - 1) {
                    Expr::Literal(Value::Int(k)) => Expr::lit(k.wrapping_neg()),
                    inner => Expr::Unary {
                        op: coddb::ast::UnaryOp::Neg,
                        expr: Box::new(inner),
                    },
                }
            }
            67..=73 => Expr::Func {
                func: FuncName::Abs,
                args: vec![self.gen_int(rng, depth - 1)],
            },
            74..=79 => Expr::Func {
                func: FuncName::Length,
                args: vec![self.gen_text(rng, depth - 1)],
            },
            80..=84 => Expr::Func {
                func: FuncName::Sign,
                args: vec![self.gen_int(rng, depth - 1)],
            },
            85..=89 => {
                if rng.random_bool(0.08) {
                    // A wide operand-form CASE (many WHEN arms stress the
                    // engines' CASE machinery).
                    let operand = self.gen_int(rng, 0);
                    let whens = (0..9)
                        .map(|i| (Expr::lit(i as i64), Expr::lit(i as i64 * 10)))
                        .collect();
                    Expr::Case {
                        operand: Some(Box::new(operand)),
                        whens,
                        else_expr: Some(Box::new(Expr::lit(-1i64))),
                    }
                } else {
                    let cond = self.gen_bool(rng, depth - 1);
                    let then = self.gen_int(rng, depth - 1);
                    let els = self.gen_int(rng, depth - 1);
                    Expr::Case {
                        operand: None,
                        whens: vec![(cond, then)],
                        else_expr: Some(Box::new(els)),
                    }
                }
            }
            90..=93 => {
                // Cross-type casts (TEXT→INT under strict typing is an
                // expected-error path; a known internal-error nest).
                let src = [DataType::Int, DataType::Real, DataType::Text][rng.random_range(0..3)];
                Expr::Cast {
                    expr: Box::new(self.gen_expr(rng, src, depth - 1)),
                    ty: DataType::Int,
                }
            }
            94..=99 if self.config.allow_subqueries => {
                let q = self.gen_count_subquery(rng, depth.saturating_sub(1));
                Expr::Scalar(Box::new(q))
            }
            _ => self.leaf(rng, DataType::Int),
        }
    }

    fn gen_real(&mut self, rng: &mut (impl Rng + ?Sized), depth: u32) -> Expr {
        if depth == 0 {
            return self.leaf(rng, DataType::Real);
        }
        let roll = rng.random_range(0..100);
        match roll {
            0..=39 => self.leaf(rng, DataType::Real),
            40..=64 => {
                let op = [BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul][rng.random_range(0..3)];
                Expr::bin(
                    op,
                    self.gen_real(rng, depth - 1),
                    self.gen_real(rng, depth - 1),
                )
            }
            65..=74 => {
                // Precision mostly small, occasionally oversized (an
                // engine edge case).
                let precision = if rng.random_bool(0.1) {
                    rng.random_range(11i64..14)
                } else {
                    rng.random_range(0i64..3)
                };
                Expr::Func {
                    func: FuncName::Round,
                    args: vec![self.gen_real(rng, depth - 1), Expr::lit(precision)],
                }
            }
            75..=84 => Expr::Cast {
                expr: Box::new(self.gen_int(rng, depth - 1)),
                ty: DataType::Real,
            },
            85..=99 if self.config.allow_subqueries => {
                let (q, _) = self.gen_agg_subquery(rng, AggFunc::Avg, depth.saturating_sub(1));
                Expr::Scalar(Box::new(q))
            }
            _ => self.leaf(rng, DataType::Real),
        }
    }

    fn gen_text(&mut self, rng: &mut (impl Rng + ?Sized), depth: u32) -> Expr {
        if depth == 0 {
            return self.leaf(rng, DataType::Text);
        }
        let roll = rng.random_range(0..100);
        match roll {
            0..=49 => self.leaf(rng, DataType::Text),
            50..=64 => Expr::Func {
                func: if rng.random() {
                    FuncName::Upper
                } else {
                    FuncName::Lower
                },
                args: vec![self.gen_text(rng, depth - 1)],
            },
            65..=79 => Expr::bin(
                BinaryOp::Concat,
                self.gen_text(rng, depth - 1),
                self.gen_text(rng, depth - 1),
            ),
            80..=89 => {
                // Start index mostly positive; occasionally negative
                // (SQLite counts from the end; an engine edge case).
                let start = if rng.random_bool(0.15) {
                    rng.random_range(-3i64..0)
                } else {
                    rng.random_range(1i64..3)
                };
                Expr::Func {
                    func: FuncName::Substr,
                    args: vec![
                        self.gen_text(rng, depth - 1),
                        Expr::lit(start),
                        Expr::lit(rng.random_range(0i64..4)),
                    ],
                }
            }
            _ => Expr::Cast {
                expr: Box::new(self.gen_int(rng, depth - 1)),
                ty: DataType::Text,
            },
        }
    }

    // -- subqueries -----------------------------------------------------------

    fn pick_subquery_table(&self, rng: &mut (impl Rng + ?Sized)) -> Option<&crate::TableInfo> {
        if self.schema.tables.is_empty() {
            return None;
        }
        Some(&self.schema.tables[rng.random_range(0..self.schema.tables.len())])
    }

    /// A subquery returning any number of single-column rows, for
    /// `EXISTS` / `IN` / `ANY` / `ALL`. When `ty` is given, the output
    /// column has that type (strict dialects demand it). Occasionally the
    /// body is a set operation — UNION/INTERSECT/EXCEPT of two cores —
    /// with an optional positional ORDER BY (all engine bug nests).
    pub fn gen_row_subquery(
        &mut self,
        rng: &mut (impl Rng + ?Sized),
        ty: Option<DataType>,
        depth: u32,
    ) -> Select {
        let first_distinct = rng.random_bool(0.15);
        let first = self.gen_row_core(rng, ty, depth, first_distinct);
        let Some(first) = first else {
            return Select::scalar_probe(Expr::Literal(random_value(
                rng,
                ty.unwrap_or(DataType::Int),
            )));
        };
        if !rng.random_bool(0.2) {
            return Select::from_core(first);
        }
        // Set-operation body. For typed operands both sides keep the type;
        // untyped (EXISTS) sides may mix types freely.
        let second_distinct = rng.random_bool(0.3);
        let Some(second) = self.gen_row_core(rng, ty, depth, second_distinct) else {
            return Select::from_core(first);
        };
        let op = [
            coddb::ast::SetOp::Union,
            coddb::ast::SetOp::Union,
            coddb::ast::SetOp::Intersect,
            coddb::ast::SetOp::Except,
        ][rng.random_range(0..4)];
        let all = op == coddb::ast::SetOp::Union && rng.random_bool(0.4);
        let mut q = Select {
            with: Vec::new(),
            body: coddb::ast::SelectBody::SetOp {
                op,
                all,
                left: Box::new(coddb::ast::SelectBody::Core(first)),
                right: Box::new(coddb::ast::SelectBody::Core(second)),
            },
            order_by: Vec::new(),
            limit: None,
            offset: None,
        };
        if rng.random_bool(0.25) {
            q.order_by.push(coddb::ast::OrderItem {
                expr: Expr::lit(1i64),
                order: SortOrder::Asc,
            });
        }
        q
    }

    /// One single-column select core over a random table.
    fn gen_row_core(
        &mut self,
        rng: &mut (impl Rng + ?Sized),
        ty: Option<DataType>,
        depth: u32,
        distinct: bool,
    ) -> Option<SelectCore> {
        let table = self.pick_subquery_table(rng)?.clone();
        let inner_scope = table.columns_as(&table.name);
        let col = match ty {
            Some(want) => inner_scope
                .iter()
                .find(|c| c.ty == want || (c.ty == DataType::Any && !self.dialect.strict_types()))
                .cloned(),
            None => Some(inner_scope[rng.random_range(0..inner_scope.len())].clone()),
        };
        let item = match (&col, ty) {
            (Some(c), _) => self.inner_col(rng, c),
            (None, Some(want)) => Expr::Literal(random_value(rng, want)),
            (None, None) => Expr::lit(1i64),
        };
        let where_clause = self.gen_inner_predicate(rng, &inner_scope, depth);
        Some(SelectCore {
            distinct,
            items: vec![SelectItem::Expr {
                expr: item,
                alias: None,
            }],
            from: Some(TableExpr::named(table.name.clone())),
            where_clause,
            ..SelectCore::default()
        })
    }

    /// A scalar subquery (exactly one row, one column), built with an
    /// aggregate or `LIMIT 1` — the two paper-sanctioned ways of forcing a
    /// scalar (§3.3).
    pub fn gen_scalar_subquery(
        &mut self,
        rng: &mut (impl Rng + ?Sized),
        depth: u32,
    ) -> (Select, DataType) {
        if rng.random_bool(0.7) {
            let func = [
                AggFunc::Count,
                AggFunc::Min,
                AggFunc::Max,
                AggFunc::Avg,
                AggFunc::Sum,
            ][rng.random_range(0..5)];
            self.gen_agg_subquery(rng, func, depth)
        } else {
            // LIMIT 1 with a full ORDER BY keeps the result deterministic.
            let Some(table) = self.pick_subquery_table(rng) else {
                return (Select::scalar_probe(Expr::lit(1i64)), DataType::Int);
            };
            let table = table.clone();
            let inner_scope = table.columns_as(&table.name);
            let col = inner_scope[rng.random_range(0..inner_scope.len())].clone();
            let mut q = Select::from_core(SelectCore {
                items: vec![SelectItem::Expr {
                    expr: Expr::col(col.table.clone(), col.column.clone()),
                    alias: None,
                }],
                from: Some(TableExpr::named(table.name.clone())),
                where_clause: self.gen_inner_predicate(rng, &inner_scope, depth),
                ..SelectCore::default()
            });
            q.order_by = inner_scope
                .iter()
                .map(|c| coddb::ast::OrderItem {
                    expr: Expr::col(c.table.clone(), c.column.clone()),
                    order: SortOrder::Asc,
                })
                .collect();
            q.limit = Some(Expr::lit(1i64));
            (q, col.ty)
        }
    }

    /// `SELECT COUNT(*) FROM t [WHERE p]` — always integer-typed.
    pub fn gen_count_subquery(&mut self, rng: &mut (impl Rng + ?Sized), depth: u32) -> Select {
        let Some(table) = self.pick_subquery_table(rng) else {
            return Select::scalar_probe(Expr::lit(0i64));
        };
        let table = table.clone();
        let inner_scope = table.columns_as(&table.name);
        Select::from_core(SelectCore {
            items: vec![SelectItem::Expr {
                expr: Expr::count_star(),
                alias: None,
            }],
            from: Some(TableExpr::named(table.name.clone())),
            where_clause: self.gen_inner_predicate(rng, &inner_scope, depth),
            ..SelectCore::default()
        })
    }

    fn gen_agg_subquery(
        &mut self,
        rng: &mut (impl Rng + ?Sized),
        func: AggFunc,
        depth: u32,
    ) -> (Select, DataType) {
        let Some(table) = self.pick_subquery_table(rng) else {
            return (Select::scalar_probe(Expr::lit(0i64)), DataType::Int);
        };
        let table = table.clone();
        let inner_scope = table.columns_as(&table.name);
        // Numeric aggregates want a numeric argument.
        let arg_col = inner_scope
            .iter()
            .find(|c| matches!(c.ty, DataType::Int | DataType::Real | DataType::Any))
            .cloned()
            .unwrap_or_else(|| inner_scope[0].clone());
        let arg_ref = self.inner_col(rng, &arg_col);
        let (agg, ty) = match func {
            AggFunc::Count | AggFunc::CountStar => (Expr::count_star(), DataType::Int),
            AggFunc::Avg | AggFunc::Total => (
                Expr::Agg {
                    func: AggFunc::Avg,
                    arg: Some(Box::new(arg_ref)),
                    distinct: rng.random_bool(0.2),
                },
                DataType::Real,
            ),
            AggFunc::Sum => (
                Expr::Agg {
                    func: AggFunc::Sum,
                    arg: Some(Box::new(arg_ref)),
                    distinct: rng.random_bool(0.2),
                },
                if arg_col.ty == DataType::Real {
                    DataType::Real
                } else {
                    DataType::Int
                },
            ),
            AggFunc::Min | AggFunc::Max => (
                Expr::Agg {
                    func,
                    arg: Some(Box::new(arg_ref)),
                    distinct: false,
                },
                arg_col.ty,
            ),
        };
        let q = Select::from_core(SelectCore {
            items: vec![SelectItem::Expr {
                expr: agg,
                alias: None,
            }],
            from: Some(TableExpr::named(table.name.clone())),
            where_clause: self.gen_inner_predicate(rng, &inner_scope, depth),
            ..SelectCore::default()
        });
        (q, ty)
    }

    /// Inner predicate of a subquery: either purely over the inner scope
    /// (non-correlated) or comparing an inner column with an outer one
    /// (correlated — the outer reference is recorded in `{cᵢ}`).
    fn gen_inner_predicate(
        &mut self,
        rng: &mut (impl Rng + ?Sized),
        inner_scope: &[ColumnInfo],
        depth: u32,
    ) -> Option<Expr> {
        if rng.random_bool(0.3) {
            return None;
        }
        let correlated = !self.scope.is_empty() && rng.random_bool(0.45);
        if correlated {
            // inner_col CMP outer_col with compatible types.
            for _ in 0..8 {
                let inner = &inner_scope[rng.random_range(0..inner_scope.len())];
                let candidates: Vec<&ColumnInfo> = self
                    .scope
                    .iter()
                    .filter(|o| compatible(o.ty, inner.ty) || !self.dialect.strict_types())
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let outer = candidates[rng.random_range(0..candidates.len())].clone();
                self.refs.push(outer.clone());
                let op = [BinaryOp::Eq, BinaryOp::Ne, BinaryOp::Lt, BinaryOp::Ge]
                    [rng.random_range(0..4)];
                return Some(Expr::bin(
                    op,
                    Expr::col(outer.table, outer.column),
                    Expr::col(inner.table.clone(), inner.column.clone()),
                ));
            }
        }
        // Non-correlated: generate over the inner scope only.
        let mut inner_gen = ExprGen::new(self.dialect, self.config, self.schema, inner_scope);
        let pred = inner_gen.gen_predicate(rng, depth.min(2));
        Some(pred)
    }
}

fn compatible(a: DataType, b: DataType) -> bool {
    use DataType::*;
    matches!(
        (a, b),
        (Int, Int) | (Real, Real) | (Int, Real) | (Real, Int) | (Text, Text) | (Bool, Bool)
    ) || a == Any
        || b == Any
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::generate_state;
    use coddb::Database;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64, dialect: Dialect) -> (Database, SchemaInfo) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = GenConfig::default();
        let (stmts, schema) = generate_state(&mut rng, dialect, &cfg);
        let mut db = Database::new(dialect);
        for s in &stmts {
            db.execute(s).unwrap();
        }
        (db, schema)
    }

    #[test]
    fn phi_refs_only_come_from_primary_scope() {
        let cfg = GenConfig::default();
        for seed in 0..40u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (_, schema) = generate_state(&mut rng, Dialect::Sqlite, &cfg);
            let t = schema.tables[0].clone();
            let scope = t.columns_as("x");
            let mut gen = ExprGen::new(Dialect::Sqlite, &cfg, &schema, &scope);
            let phi = gen.gen_phi(&mut rng);
            for r in &phi.refs {
                assert_eq!(r.table, "x", "ref escaped the primary scope: {r:?}");
            }
            // Independence classification agrees with the refs.
            assert_eq!(phi.is_independent(), phi.refs.is_empty());
        }
    }

    #[test]
    fn generated_predicates_evaluate_or_fail_expectedly() {
        // Predicates placed in a WHERE over the primary table must either
        // run or produce only *expected* errors on every dialect.
        for dialect in Dialect::ALL {
            let mut interesting = 0;
            for seed in 0..60u64 {
                let (mut db, schema) = setup(seed, dialect);
                let cfg = GenConfig::default();
                let mut rng = StdRng::seed_from_u64(seed * 31 + 7);
                let t = schema.tables[0].clone();
                let scope = t.columns_as(&t.name);
                let mut gen = ExprGen::new(dialect, &cfg, &schema, &scope);
                let phi = gen.gen_phi(&mut rng);
                let sql = format!("SELECT COUNT(*) FROM {} WHERE {}", t.name, phi.expr);
                match db.query_sql(&sql) {
                    Ok(_) => interesting += 1,
                    Err(e) => assert_eq!(
                        e.severity(),
                        coddb::Severity::Expected,
                        "unexpected engine failure on {dialect} (seed {seed}): {sql}\n{e}"
                    ),
                }
            }
            assert!(
                interesting > 20,
                "{dialect}: too few valid predicates ({interesting}/60)"
            );
        }
    }

    #[test]
    fn scalar_subqueries_really_are_scalar() {
        for seed in 0..40u64 {
            let (mut db, schema) = setup(seed, Dialect::Sqlite);
            let cfg = GenConfig::default();
            let mut rng = StdRng::seed_from_u64(seed + 1000);
            let scope: Vec<ColumnInfo> = Vec::new();
            let mut gen = ExprGen::new(Dialect::Sqlite, &cfg, &schema, &scope);
            let (q, _) = gen.gen_scalar_subquery(&mut rng, 2);
            match db.query(&q) {
                Ok(rel) => {
                    assert!(
                        rel.rows.len() <= 1,
                        "scalar subquery returned {} rows",
                        rel.rows.len()
                    );
                    assert_eq!(rel.columns.len(), 1);
                }
                Err(e) => assert_eq!(e.severity(), coddb::Severity::Expected),
            }
        }
    }

    #[test]
    fn expressions_only_config_never_generates_subqueries() {
        let cfg = GenConfig::expressions_only();
        for seed in 0..60u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (_, schema) = generate_state(&mut rng, Dialect::Sqlite, &cfg);
            let t = schema.tables[0].clone();
            let scope = t.columns_as(&t.name);
            let mut gen = ExprGen::new(Dialect::Sqlite, &cfg, &schema, &scope);
            let phi = gen.gen_phi(&mut rng);
            assert!(
                !phi.expr.contains_subquery(),
                "subquery leaked: {}",
                phi.expr
            );
        }
    }

    #[test]
    fn max_depth_bounds_expression_size() {
        fn depth_of(e: &Expr) -> u32 {
            let mut max_child = 0;
            coddb::ast::visit::walk_expr_shallow(e, &mut |_| {});
            // Approximate by rendered length ratio instead of a full depth
            // computation: deeper configs must produce longer expressions
            // on average; exact depth is checked by construction.
            max_child += e.to_string().len() as u32;
            max_child
        }
        let schema = SchemaInfo::default();
        let scope: Vec<ColumnInfo> = Vec::new();
        let avg_len = |d: u32| {
            let cfg = GenConfig {
                allow_subqueries: false,
                ..GenConfig::with_max_depth(d)
            };
            let mut total = 0u64;
            for seed in 0..120u64 {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut gen = ExprGen::new(Dialect::Sqlite, &cfg, &schema, &scope);
                total += depth_of(&gen.gen_phi(&mut rng).expr) as u64;
            }
            total
        };
        assert!(
            avg_len(7) > avg_len(1),
            "MaxDepth must scale expression size"
        );
    }
}
