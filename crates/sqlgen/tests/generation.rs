//! Integration tests of the generators against the engine: everything
//! sqlgen produces must load, resolve and execute (or fail with expected
//! errors only) across all dialect profiles and generator features.

use coddb::{Database, Dialect, Severity};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqlgen::expr::ExprGen;
use sqlgen::query::{build_random_query, gen_from_context};
use sqlgen::state::generate_state;
use sqlgen::GenConfig;

fn load(seed: u64, dialect: Dialect, cfg: &GenConfig) -> (Database, sqlgen::SchemaInfo, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (stmts, schema) = generate_state(&mut rng, dialect, cfg);
    let mut db = Database::new(dialect);
    for s in &stmts {
        db.execute(s).unwrap_or_else(|e| panic!("setup {s}: {e}"));
    }
    (db, schema, rng)
}

#[test]
fn multi_join_chains_have_unique_aliases_and_execute() {
    let cfg = GenConfig::default();
    let mut chains = 0;
    for seed in 0..300u64 {
        let (mut db, schema, mut rng) = load(seed, Dialect::Sqlite, &cfg);
        let from = gen_from_context(&mut rng, &schema, &cfg, Dialect::Sqlite);
        if from.relations.len() >= 3 {
            chains += 1;
            let mut aliases: Vec<&String> = from.relations.iter().map(|(a, _)| a).collect();
            aliases.sort();
            aliases.dedup();
            assert_eq!(
                aliases.len(),
                from.relations.len(),
                "duplicate alias in chain"
            );
        }
        let q = build_random_query(&mut rng, &from, None);
        match db.query(&q) {
            Ok(rel) => assert!(!rel.columns.is_empty()),
            Err(e) => assert_eq!(e.severity(), Severity::Expected, "{q}: {e}"),
        }
    }
    assert!(chains >= 10, "3+-table chains should occur (got {chains})");
}

#[test]
fn set_op_subqueries_execute_and_stay_single_column() {
    let cfg = GenConfig::default();
    let mut setops = 0;
    for seed in 0..300u64 {
        let (mut db, schema, mut rng) = load(seed, Dialect::Sqlite, &cfg);
        let scope: Vec<sqlgen::ColumnInfo> = Vec::new();
        let mut gen = ExprGen::new(Dialect::Sqlite, &cfg, &schema, &scope);
        let q = gen.gen_row_subquery(&mut rng, None, 2);
        if matches!(q.body, coddb::ast::SelectBody::SetOp { .. }) {
            setops += 1;
        }
        match db.query(&q) {
            Ok(rel) => assert_eq!(rel.columns.len(), 1, "{q}"),
            Err(e) => assert_eq!(e.severity(), Severity::Expected, "{q}: {e}"),
        }
    }
    assert!(
        setops >= 20,
        "set-op subqueries should occur (got {setops})"
    );
}

#[test]
fn indexed_by_hints_reference_real_indexes() {
    let cfg = GenConfig {
        index_probability: 1.0,
        ..GenConfig::default()
    };
    let mut hinted = 0;
    for seed in 0..200u64 {
        let (mut db, schema, mut rng) = load(seed, Dialect::Sqlite, &cfg);
        let from = gen_from_context(&mut rng, &schema, &cfg, Dialect::Sqlite);
        if let coddb::ast::TableExpr::Named {
            indexed_by: Some(idx),
            ..
        } = &from.table_expr
        {
            hinted += 1;
            assert!(
                db.catalog().index(idx).is_some(),
                "hint references unknown index {idx}"
            );
            let q = build_random_query(&mut rng, &from, None);
            db.query(&q).unwrap_or_else(|e| panic!("{q}: {e}"));
        }
    }
    assert!(hinted >= 20, "INDEXED BY hints should occur (got {hinted})");
}

#[test]
fn strict_dialects_never_get_untyped_or_quantified_where_unsupported() {
    for dialect in [Dialect::Cockroach, Dialect::Duckdb] {
        for seed in 0..100u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (stmts, _) = generate_state(&mut rng, dialect, &GenConfig::default());
            for s in &stmts {
                if let coddb::ast::Statement::CreateTable { columns, .. } = s {
                    assert!(
                        columns.iter().all(|c| c.ty != coddb::DataType::Any),
                        "{dialect}: untyped column generated"
                    );
                }
            }
        }
    }
    // SQLite profile must never receive ANY/ALL expressions.
    let cfg = GenConfig::default();
    for seed in 0..150u64 {
        let (_, schema, mut rng) = load(seed, Dialect::Sqlite, &cfg);
        let t = schema.tables[0].clone();
        let scope = t.columns_as(&t.name);
        let mut gen = ExprGen::new(Dialect::Sqlite, &cfg, &schema, &scope);
        let phi = gen.gen_phi(&mut rng);
        let mut has_quantified = false;
        coddb::ast::visit::walk_expr_deep(&phi.expr, &mut |e| {
            if matches!(e, coddb::ast::Expr::Quantified { .. }) {
                has_quantified = true;
            }
        });
        assert!(
            !has_quantified,
            "ANY/ALL generated for SQLite: {}",
            phi.expr
        );
    }
}

#[test]
fn generated_expressions_render_and_reparse() {
    let cfg = GenConfig::default();
    for seed in 0..200u64 {
        let dialect = Dialect::ALL[(seed % 5) as usize];
        let (_, schema, mut rng) = load(seed, dialect, &cfg);
        let t = schema.tables[0].clone();
        let scope = t.columns_as(&t.name);
        let mut gen = ExprGen::new(dialect, &cfg, &schema, &scope);
        let phi = gen.gen_phi(&mut rng);
        let rendered = phi.expr.to_string();
        let reparsed =
            coddb::parser::parse_expr(&rendered).unwrap_or_else(|e| panic!("{rendered}: {e}"));
        // The parser normalizes a few sugar forms (e.g. `-86` becomes a
        // literal); after one normalization the round trip is exact.
        let normalized = reparsed.to_string();
        let reparsed2 =
            coddb::parser::parse_expr(&normalized).unwrap_or_else(|e| panic!("{normalized}: {e}"));
        assert_eq!(
            reparsed2.to_string(),
            normalized,
            "round trip not idempotent"
        );
    }
}

#[test]
fn dependent_expressions_really_depend_only_on_their_refs() {
    // Evaluate φ twice against rows that agree on {cᵢ} but differ
    // elsewhere: the results must agree (the CASE-mapping soundness
    // argument of §3.2).
    let cfg = GenConfig {
        allow_subqueries: false,
        ..GenConfig::default()
    };
    for seed in 0..150u64 {
        let (mut db, schema, mut rng) = load(seed, Dialect::Sqlite, &cfg);
        let t = schema
            .base_tables()
            .iter()
            .find(|t| t.columns.len() >= 2)
            .cloned()
            .cloned();
        let Some(t) = t else { continue };
        let scope = t.columns_as(&t.name);
        let mut gen = ExprGen::new(Dialect::Sqlite, &cfg, &schema, &scope);
        let phi = gen.gen_phi(&mut rng);
        if phi.refs.is_empty() || phi.refs.len() == t.columns.len() {
            continue;
        }
        // Two probe rows agreeing on refs, differing on one other column.
        let other = t
            .columns
            .iter()
            .find(|(c, _)| !phi.refs.iter().any(|r| r.column.eq_ignore_ascii_case(c)));
        let Some((other_col, _)) = other else {
            continue;
        };
        db.execute_sql("DROP TABLE IF EXISTS probe").unwrap();
        let defs: Vec<String> = t.columns.iter().map(|(c, _)| c.to_string()).collect();
        db.execute_sql(&format!("CREATE TABLE probe ({})", defs.join(", ")))
            .unwrap();
        let row = |marker: i64| {
            let vals: Vec<String> = t
                .columns
                .iter()
                .map(|(c, _)| {
                    if c == other_col {
                        marker.to_string()
                    } else {
                        "1".to_string()
                    }
                })
                .collect();
            format!("({})", vals.join(", "))
        };
        db.execute_sql(&format!(
            "INSERT INTO probe VALUES {}, {}",
            row(10),
            row(20)
        ))
        .unwrap();
        // Requalify φ to the probe table.
        let sql = phi
            .expr
            .to_string()
            .replace(&format!("{}.", t.name), "probe.");
        let rel = match db.query_sql(&format!("SELECT {sql} FROM probe")) {
            Ok(r) => r,
            Err(e) => {
                assert_eq!(e.severity(), Severity::Expected);
                continue;
            }
        };
        assert_eq!(rel.rows.len(), 2);
        assert!(
            rel.rows[0][0].is_identical(&rel.rows[1][0]),
            "φ {} differed across rows agreeing on refs {:?}",
            phi.expr,
            phi.refs
        );
    }
}

#[test]
fn parser_never_panics_on_mutated_sql() {
    // Take valid generated statements, mutilate them, and feed them back:
    // the parser must return Ok or Err, never panic.
    for seed in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (stmts, _) = generate_state(&mut rng, Dialect::Sqlite, &GenConfig::default());
        for s in &stmts {
            let sql = s.to_string();
            for cut in [sql.len() / 3, sql.len() / 2, sql.len().saturating_sub(2)] {
                let mut broken = String::new();
                for (i, ch) in sql.chars().enumerate() {
                    if i == cut {
                        broken.push('(');
                    }
                    broken.push(ch);
                }
                let _ = coddb::parser::parse_statements(&broken);
                let _ = coddb::parser::parse_statements(&sql[..sql.len().min(cut)]);
            }
        }
    }
}
