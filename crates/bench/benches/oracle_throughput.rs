//! Criterion micro-benchmark: single-test cost of each oracle (the
//! microscopic view of Table 3's throughput column).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use coddb::{Database, Dialect};
use coddtest::{make_oracle, Session};
use sqlgen::state::generate_state;
use sqlgen::GenConfig;

fn bench_oracles(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_one_test");
    for name in [
        "codd",
        "codd-expression",
        "codd-subquery",
        "norec",
        "tlp",
        "dqe",
        "eet",
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, name| {
            // Fixed state, fresh rng stream per iteration batch.
            let mut rng = StdRng::seed_from_u64(42);
            let (stmts, schema) = generate_state(&mut rng, Dialect::Sqlite, &GenConfig::default());
            let mut db = Database::new(Dialect::Sqlite);
            for s in &stmts {
                db.execute(s).unwrap();
            }
            let mut oracle = make_oracle(name).unwrap();
            let mut session = Session::new(&mut db);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut trng = StdRng::seed_from_u64(seed);
                std::hint::black_box(oracle.run_one(&mut session, &schema, &mut trng))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_oracles);
criterion_main!(benches);
