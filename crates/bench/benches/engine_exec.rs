//! Criterion micro-benchmark: CoddDB query execution across operator
//! classes (the paper's observation that subquery-bearing queries cost
//! ~7x expression-only queries is the target shape), plus the
//! `bind_vs_walk` comparison of the bind-once pipeline against the
//! per-row rebinding baseline on the same query shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use coddb::BindMode;
use coddtest_bench::{engine_setup as setup, QUERY_SHAPES};

fn bench_engine(c: &mut Criterion) {
    let mut db = setup();
    let mut group = c.benchmark_group("engine_exec");
    for (name, sql) in QUERY_SHAPES {
        let q = coddb::parser::parse_select(sql).unwrap();
        group.bench_function(*name, |b| {
            b.iter(|| std::hint::black_box(db.query(&q).unwrap()))
        });
    }
    group.finish();
}

/// Bind-once pipeline vs. the per-row rebinding (tree-walking) baseline
/// on identical machinery — the speedup the binding pass buys.
fn bench_bind_vs_walk(c: &mut Criterion) {
    let mut group = c.benchmark_group("bind_vs_walk");
    for (name, sql) in QUERY_SHAPES {
        let q = coddb::parser::parse_select(sql).unwrap();
        for (mode, label) in [(BindMode::PerQuery, "bound"), (BindMode::PerRow, "walk")] {
            let mut db = setup();
            db.set_bind_mode(mode);
            group.bench_with_input(BenchmarkId::new(*name, label), &q, |b, q| {
                b.iter(|| std::hint::black_box(db.query(q).unwrap()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engine, bench_bind_vs_walk);
criterion_main!(benches);
