//! Criterion micro-benchmark: CoddDB query execution across operator
//! classes (the paper's observation that subquery-bearing queries cost
//! ~7x expression-only queries is the target shape).

use criterion::{criterion_group, criterion_main, Criterion};

use coddb::{Database, Dialect};

fn setup() -> Database {
    let mut db = Database::new(Dialect::Sqlite);
    db.execute_sql("CREATE TABLE t0 (c0 INT, c1 TEXT, c2 REAL)").unwrap();
    db.execute_sql("CREATE TABLE t1 (c0 INT, c1 TEXT)").unwrap();
    db.execute_sql("CREATE INDEX i0 ON t0 (c0)").unwrap();
    for chunk in 0..4 {
        let rows: Vec<String> = (0..50)
            .map(|i| {
                let v = chunk * 50 + i;
                format!("({v}, 'r{v}', {v}.5)")
            })
            .collect();
        db.execute_sql(&format!("INSERT INTO t0 VALUES {}", rows.join(","))).unwrap();
    }
    let rows: Vec<String> = (0..40).map(|i| format!("({i}, 'x{i}')")).collect();
    db.execute_sql(&format!("INSERT INTO t1 VALUES {}", rows.join(","))).unwrap();
    db
}

fn bench_engine(c: &mut Criterion) {
    let mut db = setup();
    let cases: &[(&str, &str)] = &[
        ("seq_filter", "SELECT COUNT(*) FROM t0 WHERE c0 % 3 = 1 AND c2 > 10.0"),
        ("index_probe", "SELECT COUNT(*) FROM t0 WHERE c0 > 150"),
        ("join", "SELECT COUNT(*) FROM t0 INNER JOIN t1 ON t0.c0 = t1.c0"),
        ("group_agg", "SELECT c0 % 7, COUNT(*), AVG(c2) FROM t0 GROUP BY c0 % 7"),
        (
            "subquery_correlated",
            "SELECT COUNT(*) FROM t1 WHERE t1.c0 < \
             (SELECT AVG(t0.c0) FROM t0 WHERE t0.c0 = t1.c0)",
        ),
        (
            "subquery_noncorrelated",
            "SELECT COUNT(*) FROM t0 WHERE c0 IN (SELECT c0 FROM t1 WHERE c0 > 5)",
        ),
        ("set_op", "SELECT c0 FROM t0 WHERE c0 < 30 UNION SELECT c0 FROM t1"),
    ];
    let mut group = c.benchmark_group("engine_exec");
    for (name, sql) in cases {
        let q = coddb::parser::parse_select(sql).unwrap();
        group.bench_function(*name, |b| b.iter(|| std::hint::black_box(db.query(&q).unwrap())));
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
