//! Criterion micro-benchmark: lexing + parsing throughput on the paper's
//! listing-style SQL.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

const SCRIPT: &str = "
CREATE TABLE t0 (c0 INT, c1 TEXT, c2 REAL);
INSERT INTO t0 VALUES (1, 'a', 1.5), (2, 'b', 2.5), (NULL, 'c', NULL);
CREATE INDEX i0 ON t0 (c0 > 0);
CREATE VIEW v0 (c0) AS SELECT AVG(t0.c0) FROM t0 GROUP BY 1 > t0.c0;
SELECT COUNT(*) FROM t0 INDEXED BY i0 WHERE (SELECT COUNT(*) FROM v0 WHERE v0.c0 BETWEEN 0 AND 0);
WITH t2 AS (SELECT NULL AS b) SELECT t0.c1 FROM t0, t2 WHERE t0.c0 NOT BETWEEN t0.c0 AND \
  (CASE WHEN NULL THEN t2.b ELSE t0.c2 END);
SELECT x.c0 FROM t0 AS x WHERE x.c2 > (SELECT AVG(y.c2) FROM t0 AS y WHERE x.c0 = y.c0);
UPDATE t0 SET c1 = 'z' WHERE c0 IN (1, 862827606027206657);
DELETE FROM t0 WHERE c1 LIKE 'a%' OR c0 IS NULL;
";

fn bench_parser(c: &mut Criterion) {
    let mut group = c.benchmark_group("parser");
    group.throughput(Throughput::Bytes(SCRIPT.len() as u64));
    group.bench_function("parse_script", |b| {
        b.iter(|| std::hint::black_box(coddb::parser::parse_statements(SCRIPT).unwrap()))
    });
    group.bench_function("lex_script", |b| {
        b.iter(|| std::hint::black_box(coddb::parser::lex(SCRIPT).unwrap()))
    });
    // Render round trip.
    let stmts = coddb::parser::parse_statements(SCRIPT).unwrap();
    group.bench_function("render_script", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for s in &stmts {
                total += std::hint::black_box(s.to_string()).len();
            }
            total
        })
    });
    group.finish();
}

criterion_group!(benches, bench_parser);
criterion_main!(benches);
