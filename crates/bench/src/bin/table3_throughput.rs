//! Table 3 — efficiency comparison of the oracles.
//!
//! Runs each oracle for a fixed test budget on a *clean* SQLite-profile
//! engine (the paper used SQLite 3.42 with no known bugs) and reports:
//! number of tests, successful and unsuccessful queries, QPT (queries per
//! test), unique query plans, and branch coverage — the exact Table 3
//! columns — plus measured throughput.
//!
//! Usage: `table3_throughput [--budget N] [--seed S]` (default 20000).

use coddb::Dialect;
use coddtest::runner::{run_campaign, CampaignConfig};
use coddtest_bench::{arg_budget, arg_seed, fmt_count, Table};

fn main() {
    let budget = arg_budget(20_000);
    let seed = arg_seed(0xC0DD);
    println!("# Table 3 — oracle efficiency on the clean SQLite profile");
    println!("# budget: {budget} tests per oracle, seed {seed}\n");

    // Paper values for shape comparison: (QPT, unique plans, coverage %).
    let paper: &[(&str, f64, u64, f64)] = &[
        ("norec", 2.05, 172_808, 63.18),
        ("tlp", 2.23, 137_743, 63.63),
        ("dqe", 17.00, 486, 46.71),
        ("codd", 3.33, 2_577_603, 63.06),
        ("codd-expression", 3.10, 7_399, 63.23),
        ("codd-subquery", 3.51, 2_755_619, 62.19),
    ];

    let mut table = Table::new(&[
        "oracle",
        "tests",
        "ok queries",
        "err queries",
        "QPT",
        "paper QPT",
        "uniq plans",
        "paper plans",
        "coverage %",
        "paper cov %",
        "tests/s",
    ]);

    let mut bug_reports = Vec::new();
    for (name, paper_qpt, paper_plans, paper_cov) in paper {
        let cfg = CampaignConfig {
            tests: budget,
            seed,
            ..CampaignConfig::new(Dialect::Sqlite)
        };
        let mut oracle = coddtest::make_oracle(name).expect("oracle");
        let result = run_campaign(oracle.as_mut(), &cfg);
        if !result.findings.is_empty() {
            bug_reports.push((name.to_string(), result.findings.len()));
        }
        let tps = result.tests_run as f64 / result.elapsed.as_secs_f64();
        table.row(&[
            name.to_string(),
            fmt_count(result.tests_run),
            fmt_count(result.successful_queries),
            fmt_count(result.unsuccessful_queries),
            format!("{:.2}", result.qpt()),
            format!("{paper_qpt:.2}"),
            fmt_count(result.unique_plans as u64),
            fmt_count(*paper_plans),
            format!("{:.2}", result.coverage_percent),
            format!("{paper_cov:.2}"),
            format!("{tps:.0}"),
        ]);
    }
    table.print();

    if bug_reports.is_empty() {
        println!("\nno false alarms on the clean engine (paper reports none after mitigations)");
    } else {
        println!("\nWARNING: false alarms on a clean engine: {bug_reports:?}");
    }
    println!(
        "\nshape checks: QPT(codd) > QPT(tlp) > QPT(norec); QPT(dqe) highest; \
         plans(codd) >> plans(baselines); plans(codd-subquery) > plans(codd); \
         coverage(dqe) lowest."
    );
}
