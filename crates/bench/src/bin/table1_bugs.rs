//! Table 1 — bugs found per emulated DBMS, by category.
//!
//! For each dialect profile, enables every mutant of that profile and runs
//! a CODDTest campaign. Each finding is attributed back to the mutant(s)
//! that reproduce it; the table reports the number of *unique* mutants
//! uncovered per category, next to the paper's counts.
//!
//! Usage: `table1_bugs [--budget N] [--seed S]` (default budget 12000
//! tests per dialect).

use std::collections::BTreeSet;

use coddb::bugs::{BugId, BugKind, BugRegistry};
use coddb::Dialect;
use coddtest::runner::{attribute_bugs, run_campaign, CampaignConfig};
use coddtest_bench::{arg_budget, arg_seed, Table};

fn paper_counts(d: Dialect) -> (usize, usize, usize, usize) {
    // (logic, internal error, crash, hang) per Table 1.
    match d {
        Dialect::Sqlite => (6, 1, 0, 0),
        Dialect::Mysql => (1, 1, 0, 0),
        Dialect::Cockroach => (7, 4, 0, 2),
        Dialect::Duckdb => (5, 2, 2, 3),
        Dialect::Tidb => (5, 6, 0, 0),
    }
}

fn main() {
    let budget = arg_budget(12_000);
    let seed = arg_seed(0xC0DD);
    println!("# Table 1 — unique bugs found by CODDTest per DBMS profile");
    println!("# campaign budget: {budget} tests per dialect, seed {seed}\n");

    let mut table = Table::new(&[
        "DBMS",
        "logic",
        "internal",
        "crash",
        "hang",
        "total",
        "paper (L/I/C/H)",
    ]);
    let mut grand_total = 0usize;

    for dialect in Dialect::ALL {
        let cfg = CampaignConfig {
            bugs: BugRegistry::all_for_dialect(dialect),
            tests: budget,
            seed,
            ..CampaignConfig::new(dialect)
        };
        let mut oracle = coddtest::make_oracle("codd").expect("codd oracle");
        let mut result = run_campaign(oracle.as_mut(), &cfg);
        attribute_bugs(&mut result, &cfg, "codd");

        let unique: BTreeSet<BugId> = result.unique_attributed_bugs();
        let count = |k: BugKind| unique.iter().filter(|b| b.kind() == k).count();
        let (l, i, c, h) = (
            count(BugKind::Logic),
            count(BugKind::InternalError),
            count(BugKind::Crash),
            count(BugKind::Hang),
        );
        grand_total += unique.len();
        let (pl, pi, pc, ph) = paper_counts(dialect);
        table.row(&[
            dialect.name().to_string(),
            l.to_string(),
            i.to_string(),
            c.to_string(),
            h.to_string(),
            unique.len().to_string(),
            format!("{pl}/{pi}/{pc}/{ph}"),
        ]);

        // Per-dialect detail: which mutants were uncovered.
        eprintln!(
            "{dialect}: {} findings, {} unique mutants",
            result.findings.len(),
            unique.len()
        );
        for b in BugId::for_dialect(dialect) {
            let mark = if unique.contains(&b) {
                "found "
            } else {
                "MISSED"
            };
            eprintln!("  [{mark}] {:<40} {}", b.name(), b.description());
        }
    }
    table.print();
    println!("\ntotal unique bugs found: {grand_total} (paper: 45)");
}
