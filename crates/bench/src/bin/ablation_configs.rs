//! Ablation study: which CODDTest ingredients find which bugs?
//!
//! The paper motivates three mechanisms — plain expression folding,
//! subquery folding, and §3.4 relation folding ("12 bugs were triggered by
//! folded queries ... 11 used folded constants derived from non-correlated
//! subqueries"). This harness probes all 24 logic mutants under the three
//! CODDTest configurations and shows which mechanism each bug needs:
//!
//! * `codd-expression` — no subqueries at all (ablates subquery folding
//!   and relation folding),
//! * `codd-subquery`   — subquery-bearing φ only,
//! * `codd`            — the full oracle.
//!
//! Usage: `ablation_configs [--budget N] [--seed S]` (default 8000).

use coddb::bugs::BugId;
use coddtest::runner::detects_bug;
use coddtest_bench::{arg_budget, arg_seed, Table};

fn main() {
    let budget = arg_budget(8_000);
    let seed = arg_seed(1);
    println!("# Ablation — CODDTest configurations vs the 24 logic mutants");
    println!("# budget {budget} tests per probe, seed {seed}\n");

    let configs = ["codd", "codd-subquery", "codd-expression"];
    let mut totals = [0usize; 3];
    let mut table = Table::new(&["bug", "full", "subquery-only", "expression-only"]);
    for bug in BugId::logic_bugs() {
        let mut cells = vec![bug.name().to_string()];
        for (i, cfg) in configs.iter().enumerate() {
            match detects_bug(cfg, bug, budget, seed) {
                Some((tests, _)) => {
                    totals[i] += 1;
                    cells.push(format!("yes ({tests})"));
                }
                None => cells.push("-".into()),
            }
        }
        table.row(&cells);
    }
    table.print();
    println!(
        "\ntotals: full {} / subquery-only {} / expression-only {} of 24",
        totals[0], totals[1], totals[2]
    );
    println!(
        "expected shape: the full oracle dominates; expression-only misses every \
         subquery/relation-dependent bug class (the paper's §4.1 breakdown)."
    );
}
