//! §4.2 — oracle overlap on a single buggy SQLite build.
//!
//! The paper runs NoREC, TLP, EET and CODDTest for 24 hours against
//! SQLite 3.30.0 and reports how many *unique* bugs each finds (27 / 27 /
//! 6 / 25) and how many each finds alone (3 / 2 / 3 / 4). This harness
//! reproduces the setup by enabling every SQLite-profile mutant, running
//! all four oracles with the same budget, attributing findings to
//! mutants, and reporting the overlap.
//!
//! Usage: `exp42_overlap [--budget N] [--seed S]` (default 12000).

use std::collections::BTreeSet;

use coddb::bugs::{BugId, BugRegistry};
use coddb::Dialect;
use coddtest::runner::{attribute_bugs, run_campaign, CampaignConfig};
use coddtest_bench::{arg_budget, arg_seed, Table};

fn main() {
    let budget = arg_budget(12_000);
    let seed = arg_seed(0xC0DD);
    println!("# §4.2 — oracle overlap on the all-mutants SQLite profile");
    println!("# budget {budget} tests per oracle, seed {seed}\n");

    let oracles = ["norec", "tlp", "eet", "codd"];
    let paper_unique = [27u32, 27, 6, 25];
    let paper_exclusive = [3u32, 2, 3, 4];

    let mut found: Vec<BTreeSet<BugId>> = Vec::new();
    let mut reports: Vec<usize> = Vec::new();
    for name in oracles {
        let cfg = CampaignConfig {
            bugs: BugRegistry::all_for_dialect(Dialect::Sqlite),
            tests: budget,
            seed,
            ..CampaignConfig::new(Dialect::Sqlite)
        };
        let mut oracle = coddtest::make_oracle(name).expect("oracle");
        let mut result = run_campaign(oracle.as_mut(), &cfg);
        attribute_bugs(&mut result, &cfg, name);
        reports.push(result.findings.len());
        found.push(result.unique_attributed_bugs());
    }

    let mut table = Table::new(&[
        "oracle",
        "bug reports",
        "unique bugs",
        "paper unique",
        "exclusive",
        "paper exclusive",
    ]);
    for (i, name) in oracles.iter().enumerate() {
        let exclusive = found[i]
            .iter()
            .filter(|b| {
                found
                    .iter()
                    .enumerate()
                    .all(|(j, s)| j == i || !s.contains(*b))
            })
            .count();
        table.row(&[
            name.to_string(),
            reports[i].to_string(),
            found[i].len().to_string(),
            paper_unique[i].to_string(),
            exclusive.to_string(),
            paper_exclusive[i].to_string(),
        ]);
    }
    table.print();

    // Which mutants stayed hidden from everyone.
    let all_found: BTreeSet<BugId> = found.iter().flatten().copied().collect();
    let missed: Vec<&str> = BugId::for_dialect(Dialect::Sqlite)
        .into_iter()
        .filter(|b| !all_found.contains(b))
        .map(|b| b.name())
        .collect();
    println!("\nmutants found by no oracle: {missed:?}");
    println!(
        "shape check: substantial overlap between oracles, yet each finds bugs the \
         others miss (the paper's central §4.2 observation)."
    );
}
