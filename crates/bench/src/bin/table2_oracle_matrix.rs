//! Table 2 — which state-of-the-art oracles can detect each logic bug.
//!
//! Empirically probes every (logic mutant × oracle) pair with a
//! stop-on-first-bug campaign, prints the detection matrix, and compares
//! the per-oracle totals with the paper's manual analysis (NoREC 11,
//! TLP 12, DQE 4, only-CODDTest 11 of 24).
//!
//! Usage: `table2_oracle_matrix [--budget N] [--seed S]` (default 10000).

use coddb::bugs::{BaselineOracle, BugId};
use coddtest::runner::detects_bug;
use coddtest_bench::{arg_budget, arg_seed, Table};

fn main() {
    let budget = arg_budget(10_000);
    let seed = arg_seed(1);
    println!("# Table 2 — detectable logic bugs per oracle (budget {budget}, seed {seed})\n");

    let oracles = ["codd", "norec", "tlp", "dqe"];
    let mut totals = [0usize; 4];
    let mut only_codd = 0usize;

    let mut table = Table::new(&["bug", "codd", "norec", "tlp", "dqe", "paper-expected"]);
    for bug in BugId::logic_bugs() {
        let mut cells = vec![bug.name().to_string()];
        let mut detected = [false; 4];
        for (i, oracle) in oracles.iter().enumerate() {
            let hit = detects_bug(oracle, bug, budget, seed);
            detected[i] = hit.is_some();
            cells.push(match hit {
                Some((tests, _)) => format!("yes ({tests})"),
                None => "-".to_string(),
            });
            if detected[i] {
                totals[i] += 1;
            }
        }
        if detected[0] && !detected[1] && !detected[2] && !detected[3] {
            only_codd += 1;
        }
        let expected: Vec<&str> = bug
            .baseline_detectable()
            .iter()
            .map(|o| match o {
                BaselineOracle::NoRec => "norec",
                BaselineOracle::Tlp => "tlp",
                BaselineOracle::Dqe => "dqe",
            })
            .collect();
        cells.push(if expected.is_empty() {
            "only CODDTest".to_string()
        } else {
            expected.join(",")
        });
        table.row(&cells);
    }
    table.print();

    println!("\n| metric        | measured | paper |");
    println!("|---------------|----------|-------|");
    println!("| CODDTest      | {:>8} | 24    |", totals[0]);
    println!("| NoREC         | {:>8} | 11    |", totals[1]);
    println!("| TLP           | {:>8} | 12    |", totals[2]);
    println!("| DQE           | {:>8} | 4     |", totals[3]);
    println!("| only CODDTest | {only_codd:>8} | 11    |");
}
