//! Perf-trajectory runner: times the engine benchmark shapes in both
//! bind modes and writes `BENCH_engine.json` so successive PRs can track
//! the execution pipeline's speed (and the bind-once speedup) over time.
//!
//! Run with: `cargo run --release -p coddtest-bench --bin bench_engine`
//! (optionally `-- --out <path>`).

use std::time::{Duration, Instant};

use coddb::ast::Select;
use coddb::{BindMode, Database};
use coddtest_bench::{engine_setup as setup, QUERY_SHAPES};

/// Median-of-runs ns/iter: warm up, then take the median of several
/// fixed-duration measurement windows (robust against scheduler noise).
fn measure(db: &mut Database, q: &Select) -> f64 {
    const WARMUP: Duration = Duration::from_millis(60);
    const WINDOW: Duration = Duration::from_millis(120);
    const RUNS: usize = 5;

    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < WARMUP {
        std::hint::black_box(db.query(q).unwrap());
        warm_iters += 1;
    }
    let per_iter = (WARMUP.as_nanos() as u64 / warm_iters.max(1)).max(1);
    let batch = (200_000 / per_iter).clamp(1, 5_000);

    let mut samples = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let mut iters = 0u64;
        let start = Instant::now();
        while start.elapsed() < WINDOW {
            for _ in 0..batch {
                std::hint::black_box(db.query(q).unwrap());
            }
            iters += batch;
        }
        samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[RUNS / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_engine.json")
        .to_string();

    let mut entries = Vec::new();
    for (name, sql) in QUERY_SHAPES {
        let q = coddb::parser::parse_select(sql).unwrap();

        let mut bound_db = setup();
        bound_db.set_bind_mode(BindMode::PerQuery);
        let bound_ns = measure(&mut bound_db, &q);

        let mut walk_db = setup();
        walk_db.set_bind_mode(BindMode::PerRow);
        let walk_ns = measure(&mut walk_db, &q);

        let speedup = walk_ns / bound_ns;
        println!(
            "{name:<24} bound {bound_ns:>12.0} ns/iter   walk {walk_ns:>12.0} ns/iter   speedup {speedup:>5.2}x"
        );
        entries.push(format!(
            "    {:?}: {{\n      \"bound_ns_per_iter\": {:.0},\n      \"walk_ns_per_iter\": {:.0},\n      \"speedup\": {:.2}\n    }}",
            name, bound_ns, walk_ns, speedup
        ));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"engine_exec bind_vs_walk\",\n  \"unit\": \"ns/iter\",\n  \"shapes\": {{\n{}\n  }}\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write BENCH_engine.json");
    println!("wrote {out_path}");
}
