//! Perf-trajectory runner: times the engine benchmark shapes in both
//! bind modes and writes `BENCH_engine.json` so successive PRs can track
//! the execution pipeline's speed (and the bind-once speedup) over time.
//! Join shapes are additionally timed with the nested loop forced
//! (hash-join speedup), scan shapes with cloning scans forced (zero-copy
//! speedup), vectorization-dominated shapes with row-at-a-time
//! evaluation forced (`vectorized_vs_row_speedup`), and index-seek
//! shapes with `AccessMode::ScanOnly` forced
//! (`indexed_vs_scan_speedup`).
//!
//! Run with: `cargo run --release -p coddtest-bench --bin bench_engine`
//! (optionally `-- --out <path>`; `-- --quick` shrinks the measurement
//! windows for CI smoke runs, which are about compilation + execution
//! health, not stable numbers; `-- --shapes a,b,c` measures only the
//! named shapes — unknown names are an error, which is what lets CI
//! catch a silently renamed or dropped shape).

use std::time::{Duration, Instant};

use coddb::ast::Select;
use coddb::bugs::BugRegistry;
use coddb::recovery::scrub_images;
use coddb::wal::{MediaMode, MediaPlan, StorageMode};
use coddb::{AccessMode, BindMode, Database, Dialect, EvalMode, JoinMode, ScanMode, StorageSite};
use coddtest::make_oracle;
use coddtest::runner::{run_campaign, run_campaign_parallel, CampaignConfig};
use coddtest_bench::{
    engine_setup as setup, is_indexed_shape, is_join_shape, is_scan_shape, is_vec_shape,
    CAMPAIGN_PARALLEL_SHAPE, CHECKPOINT_WRITE_SHAPE, DML_INDEX_MAINTENANCE_SHAPE, QUERY_SHAPES,
    RECOVERY_REPLAY_CHECKPOINTED_SHAPE, RECOVERY_REPLAY_SHAPE, SCRUB_THROUGHPUT_SHAPE,
    WAL_COMMIT_NOSPACE_SHAPE, WAL_COMMIT_SHAPE,
};

/// Worker threads for the `campaign_parallel` shape (the evaluation's
/// reference point: the differential suite proves byte-identical results,
/// this records the wall-clock win).
const CAMPAIGN_THREADS: usize = 4;

struct Windows {
    warmup: Duration,
    window: Duration,
    runs: usize,
}

const FULL: Windows = Windows {
    warmup: Duration::from_millis(60),
    window: Duration::from_millis(120),
    runs: 5,
};

const QUICK: Windows = Windows {
    warmup: Duration::from_millis(5),
    window: Duration::from_millis(15),
    runs: 3,
};

/// Median-of-runs ns/iter: warm up, then take the median of several
/// fixed-duration measurement windows (robust against scheduler noise).
fn measure(db: &mut Database, q: &Select, w: &Windows) -> f64 {
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < w.warmup {
        std::hint::black_box(db.query(q).unwrap());
        warm_iters += 1;
    }
    let per_iter = (w.warmup.as_nanos() as u64 / warm_iters.max(1)).max(1);
    let batch = (200_000 / per_iter).clamp(1, 5_000);

    let mut samples = Vec::with_capacity(w.runs);
    for _ in 0..w.runs {
        let mut iters = 0u64;
        let start = Instant::now();
        while start.elapsed() < w.window {
            for _ in 0..batch {
                std::hint::black_box(db.query(q).unwrap());
            }
            iters += batch;
        }
        samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[w.runs / 2]
}

/// Median-of-runs wall clock for a one-shot workload (a whole campaign,
/// not a repeatable query), in nanoseconds.
fn measure_campaign(runs: usize, mut work: impl FnMut()) -> f64 {
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs.max(1) {
        let start = Instant::now();
        work();
        samples.push(start.elapsed().as_nanos() as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_engine.json")
        .to_string();
    let quick = args.iter().any(|a| a == "--quick");
    let windows = if quick { QUICK } else { FULL };
    // --shapes a,b,c: measure a subset; unknown names abort (shape-drop
    // guard — a renamed shape must not silently vanish from the output).
    let shape_filter: Option<Vec<String>> = args
        .iter()
        .position(|a| a == "--shapes")
        .and_then(|i| args.get(i + 1))
        .map(|csv| csv.split(',').map(|s| s.trim().to_string()).collect());
    if let Some(filter) = &shape_filter {
        let known: Vec<&str> = QUERY_SHAPES
            .iter()
            .map(|(name, _)| *name)
            .chain([
                CAMPAIGN_PARALLEL_SHAPE,
                WAL_COMMIT_SHAPE,
                RECOVERY_REPLAY_SHAPE,
                CHECKPOINT_WRITE_SHAPE,
                RECOVERY_REPLAY_CHECKPOINTED_SHAPE,
                DML_INDEX_MAINTENANCE_SHAPE,
                SCRUB_THROUGHPUT_SHAPE,
                WAL_COMMIT_NOSPACE_SHAPE,
            ])
            .collect();
        for want in filter {
            if !known.iter().any(|name| name == want) {
                eprintln!(
                    "bench_engine: unknown shape in --shapes: {want}\navailable shapes: {}",
                    known.join(", ")
                );
                std::process::exit(1);
            }
        }
    }

    let mut entries = Vec::new();
    for (name, sql) in QUERY_SHAPES {
        if let Some(filter) = &shape_filter {
            if !filter.iter().any(|f| f == name) {
                continue;
            }
        }
        let q = coddb::parser::parse_select(sql).unwrap();

        let mut bound_db = setup();
        bound_db.set_bind_mode(BindMode::PerQuery);
        let bound_ns = measure(&mut bound_db, &q, &windows);

        let mut walk_db = setup();
        walk_db.set_bind_mode(BindMode::PerRow);
        let walk_ns = measure(&mut walk_db, &q, &windows);

        let speedup = walk_ns / bound_ns;
        let mut extra = String::new();
        let mut extra_log = String::new();
        if is_scan_shape(name) {
            // The cloning-scan baseline isolates the zero-copy pipeline's
            // contribution: same bind-once machinery, rows deep-cloned and
            // FROM results rematerialized per instantiation.
            let mut cloning_db = setup();
            cloning_db.set_bind_mode(BindMode::PerQuery);
            cloning_db.set_scan_mode(ScanMode::Cloning);
            let cloning_ns = measure(&mut cloning_db, &q, &windows);
            let scan_speedup = cloning_ns / bound_ns;
            extra.push_str(&format!(
                ",\n      \"cloning_scan_ns_per_iter\": {cloning_ns:.0},\n      \"shared_vs_cloning_speedup\": {scan_speedup:.2}"
            ));
            extra_log.push_str(&format!(
                "   cloning {cloning_ns:>12.0} ns/iter   shared speedup {scan_speedup:>5.2}x"
            ));
        }
        if is_join_shape(name) {
            // The bound nested loop isolates the hash join's contribution
            // from the bind-once speedup.
            let mut nested_db = setup();
            nested_db.set_bind_mode(BindMode::PerQuery);
            nested_db.set_join_mode(JoinMode::NestedLoop);
            let nested_ns = measure(&mut nested_db, &q, &windows);
            let hash_speedup = nested_ns / bound_ns;
            extra.push_str(&format!(
                ",\n      \"bound_nested_loop_ns_per_iter\": {nested_ns:.0},\n      \"hash_vs_nested_speedup\": {hash_speedup:.2}"
            ));
            extra_log.push_str(&format!(
                "   nested {nested_ns:>12.0} ns/iter   hash speedup {hash_speedup:>5.2}x"
            ));
        }
        if is_indexed_shape(name) {
            // The ScanOnly baseline isolates the index access path's
            // contribution: same bind-once machinery, seeks forced back
            // to full scans (plus the un-eliminated sort where the seek
            // order satisfied ORDER BY).
            let mut scan_db = setup();
            scan_db.set_bind_mode(BindMode::PerQuery);
            scan_db.set_access_mode(AccessMode::ScanOnly);
            let scan_ns = measure(&mut scan_db, &q, &windows);
            let idx_speedup = scan_ns / bound_ns;
            extra.push_str(&format!(
                ",\n      \"scan_ns_per_iter\": {scan_ns:.0},\n      \"indexed_vs_scan_speedup\": {idx_speedup:.2}"
            ));
            extra_log.push_str(&format!(
                "   scan-only {scan_ns:>12.0} ns/iter   seek speedup {idx_speedup:>5.2}x"
            ));
        }
        if is_vec_shape(name) {
            // The row-at-a-time interpreter isolates the chunked
            // evaluator's contribution on otherwise identical machinery.
            let mut row_db = setup();
            row_db.set_bind_mode(BindMode::PerQuery);
            row_db.set_eval_mode(EvalMode::RowAtATime);
            let row_ns = measure(&mut row_db, &q, &windows);
            let vec_speedup = row_ns / bound_ns;
            extra.push_str(&format!(
                ",\n      \"row_eval_ns_per_iter\": {row_ns:.0},\n      \"vectorized_vs_row_speedup\": {vec_speedup:.2}"
            ));
            extra_log.push_str(&format!(
                "   row-eval {row_ns:>12.0} ns/iter   vec speedup {vec_speedup:>5.2}x"
            ));
        }
        println!(
            "{name:<24} bound {bound_ns:>12.0} ns/iter   walk {walk_ns:>12.0} ns/iter   speedup {speedup:>5.2}x{extra_log}"
        );
        entries.push(format!(
            "    {:?}: {{\n      \"bound_ns_per_iter\": {:.0},\n      \"walk_ns_per_iter\": {:.0},\n      \"speedup\": {:.2}{}\n    }}",
            name, bound_ns, walk_ns, speedup, extra
        ));
    }

    // campaign_parallel: whole-campaign wall clock, sequential runner vs
    // the 4-thread parallel runner (same oracle, same seed — the
    // differential suite proves the results byte-identical, so this is a
    // pure scheduling measurement). Speedup tracks available cores: a
    // single-core runner records ~1.0x, which is why the core count is
    // part of the record.
    let run_campaign_shape = shape_filter
        .as_ref()
        .is_none_or(|f| f.iter().any(|s| s == CAMPAIGN_PARALLEL_SHAPE));
    if run_campaign_shape {
        let cfg = CampaignConfig {
            tests: if quick { 120 } else { 600 },
            ..CampaignConfig::new(Dialect::Sqlite)
        };
        let runs = windows.runs;
        let serial_ns = measure_campaign(runs, || {
            let mut oracle = make_oracle("codd").unwrap();
            std::hint::black_box(run_campaign(oracle.as_mut(), &cfg));
        });
        let parallel_ns = measure_campaign(runs, || {
            std::hint::black_box(run_campaign_parallel("codd", &cfg, CAMPAIGN_THREADS).unwrap());
        });
        let speedup = serial_ns / parallel_ns;
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        println!(
            "{CAMPAIGN_PARALLEL_SHAPE:<24} serial {serial_ns:>12.0} ns/iter   parallel {parallel_ns:>12.0} ns/iter   speedup {speedup:>5.2}x ({CAMPAIGN_THREADS} threads, {cores} core(s))"
        );
        entries.push(format!(
            "    {:?}: {{\n      \"serial_ns_per_iter\": {:.0},\n      \"parallel_ns_per_iter\": {:.0},\n      \"parallel_vs_serial_speedup\": {:.2},\n      \"threads\": {},\n      \"cores\": {}\n    }}",
            CAMPAIGN_PARALLEL_SHAPE, serial_ns, parallel_ns, speedup, CAMPAIGN_THREADS, cores
        ));
    }

    // wal_commit: per-statement cost of durable execution (encode + frame +
    // append + commit marker) against the identical volatile run — the
    // storage layer's logging overhead, isolated from query execution.
    let run_wal_shape = shape_filter
        .as_ref()
        .is_none_or(|f| f.iter().any(|s| s == WAL_COMMIT_SHAPE));
    if run_wal_shape {
        let dml = coddb::parser::parse_statements(
            "INSERT INTO w VALUES (1, 'x'), (2, 'y'), (3, 'z');
             UPDATE w SET b = 'z' WHERE a >= 2;
             DELETE FROM w WHERE a < 10",
        )
        .unwrap();
        let batch = if quick { 300 } else { 3_000 };
        let total_stmts = (batch * dml.len()) as f64;
        let run_mode = |mode: StorageMode| {
            measure_campaign(windows.runs, || {
                let mut db = Database::new(Dialect::Sqlite);
                db.execute_sql("CREATE TABLE w (a INT, b TEXT)").unwrap();
                db.set_storage_mode(mode);
                for _ in 0..batch {
                    for s in &dml {
                        std::hint::black_box(db.execute(s).unwrap());
                    }
                }
            }) / total_stmts
        };
        let durable_ns = run_mode(StorageMode::Durable);
        let volatile_ns = run_mode(StorageMode::Volatile);
        let overhead = durable_ns / volatile_ns;
        println!(
            "{WAL_COMMIT_SHAPE:<24} durable {durable_ns:>12.0} ns/iter   volatile {volatile_ns:>12.0} ns/iter   overhead {overhead:>5.2}x"
        );
        entries.push(format!(
            "    {:?}: {{\n      \"wal_commit_ns_per_iter\": {:.0},\n      \"volatile_ns_per_iter\": {:.0},\n      \"durable_overhead\": {:.2}\n    }}",
            WAL_COMMIT_SHAPE, durable_ns, volatile_ns, overhead
        ));
    }

    // dml_index_maintenance: the identical INSERT/UPDATE/DELETE batch
    // against an indexed and an unindexed copy of one table — the
    // write-side price of keeping the ordered index layer current,
    // recorded per statement like the WAL overhead above.
    let run_dml_index_shape = shape_filter
        .as_ref()
        .is_none_or(|f| f.iter().any(|s| s == DML_INDEX_MAINTENANCE_SHAPE));
    if run_dml_index_shape {
        let dml = coddb::parser::parse_statements(
            "INSERT INTO m VALUES (1, 'x'), (52, 'y'), (103, 'z');
             UPDATE m SET k = k + 1 WHERE k % 3 = 0;
             DELETE FROM m WHERE k > 190",
        )
        .unwrap();
        let batch = if quick { 100 } else { 1_000 };
        let total_stmts = (batch * dml.len()) as f64;
        let run_table = |with_index: bool| {
            measure_campaign(windows.runs, || {
                let mut db = Database::new(Dialect::Sqlite);
                db.execute_sql("CREATE TABLE m (k INT, v TEXT)").unwrap();
                if with_index {
                    db.execute_sql("CREATE INDEX im ON m (k)").unwrap();
                }
                let seed_rows: Vec<String> =
                    (0..200).map(|i| format!("({i}, 'seed{i}')")).collect();
                db.execute_sql(&format!("INSERT INTO m VALUES {}", seed_rows.join(",")))
                    .unwrap();
                for _ in 0..batch {
                    for s in &dml {
                        std::hint::black_box(db.execute(s).unwrap());
                    }
                }
            }) / total_stmts
        };
        let indexed_ns = run_table(true);
        let unindexed_ns = run_table(false);
        let overhead = indexed_ns / unindexed_ns;
        println!(
            "{DML_INDEX_MAINTENANCE_SHAPE:<24} indexed {indexed_ns:>12.0} ns/iter   unindexed {unindexed_ns:>12.0} ns/iter   overhead {overhead:>5.2}x"
        );
        entries.push(format!(
            "    {:?}: {{\n      \"indexed_dml_ns_per_iter\": {:.0},\n      \"unindexed_dml_ns_per_iter\": {:.0},\n      \"index_maintenance_overhead\": {:.2}\n    }}",
            DML_INDEX_MAINTENANCE_SHAPE, indexed_ns, unindexed_ns, overhead
        ));
    }

    // recovery_replay: scan + replay of a fixed durable log image into a
    // fresh engine — the crash-recovery path the differential oracle
    // exercises, timed end to end.
    let run_recovery_shape = shape_filter
        .as_ref()
        .is_none_or(|f| f.iter().any(|s| s == RECOVERY_REPLAY_SHAPE));
    // The shared churn workload for the replay shapes: 120 iterations of
    // INSERT/UPDATE/DELETE traffic, optionally checkpointed late in the
    // history so the log holds only a short suffix past the snapshot.
    let build_churn = |checkpoint_at: Option<usize>| {
        let mut db = Database::new(Dialect::Sqlite);
        db.set_storage_mode(StorageMode::Durable);
        db.execute_sql("CREATE TABLE r0 (a INT, b TEXT); CREATE TABLE r1 (a INT)")
            .unwrap();
        for i in 0..120 {
            db.execute_sql(&format!(
                "INSERT INTO r0 VALUES ({i}, 'row{i}'), ({}, 'alt{i}');
                 INSERT INTO r1 VALUES ({});
                 UPDATE r0 SET b = 'u{i}' WHERE a = {i};
                 DELETE FROM r1 WHERE a < {}",
                i + 1000,
                i * 3,
                i * 3 - 30
            ))
            .unwrap();
            if checkpoint_at == Some(i) {
                db.checkpoint().unwrap();
            }
        }
        db
    };
    if run_recovery_shape {
        let db = build_churn(None);
        let image = db.wal().expect("durable").image().to_vec();
        let batch = if quick { 10 } else { 60 };
        let replay_ns = measure_campaign(windows.runs, || {
            for _ in 0..batch {
                std::hint::black_box(
                    coddb::recovery::recover(&image, &[], Dialect::Sqlite, &BugRegistry::none())
                        .unwrap(),
                );
            }
        }) / batch as f64;
        println!(
            "{RECOVERY_REPLAY_SHAPE:<24} replay {replay_ns:>12.0} ns/iter   image {} bytes",
            image.len()
        );
        entries.push(format!(
            "    {:?}: {{\n      \"recovery_replay_ns_per_iter\": {:.0},\n      \"image_bytes\": {}\n    }}",
            RECOVERY_REPLAY_SHAPE,
            replay_ns,
            image.len()
        ));
    }

    // checkpoint_write: full cost of one Database::checkpoint() over the
    // churned catalog — snapshot serialization + seal + marker + log
    // truncation — with the size of a single snapshot recorded.
    let run_ckpt_write_shape = shape_filter
        .as_ref()
        .is_none_or(|f| f.iter().any(|s| s == CHECKPOINT_WRITE_SHAPE));
    if run_ckpt_write_shape {
        let mut once = build_churn(None);
        once.checkpoint().unwrap();
        let snapshot_bytes = once.wal().expect("durable").snapshot_image().len();
        let mut db = build_churn(None);
        let batch = if quick { 5 } else { 30 };
        let ckpt_ns = measure_campaign(windows.runs, || {
            for _ in 0..batch {
                std::hint::black_box(db.checkpoint().unwrap());
            }
        }) / batch as f64;
        println!(
            "{CHECKPOINT_WRITE_SHAPE:<24} checkpoint {ckpt_ns:>8.0} ns/iter   snapshot {snapshot_bytes} bytes"
        );
        entries.push(format!(
            "    {:?}: {{\n      \"checkpoint_write_ns_per_iter\": {:.0},\n      \"snapshot_bytes\": {}\n    }}",
            CHECKPOINT_WRITE_SHAPE, ckpt_ns, snapshot_bytes
        ));
    }

    // recovery_replay_checkpointed: snapshot + log-suffix recovery of the
    // same churn workload, checkpointed late in the history, against the
    // genesis replay of the identical un-checkpointed history — the
    // wall-clock case for checkpointing at all.
    let run_ckpt_replay_shape = shape_filter
        .as_ref()
        .is_none_or(|f| f.iter().any(|s| s == RECOVERY_REPLAY_CHECKPOINTED_SHAPE));
    if run_ckpt_replay_shape {
        let genesis_db = build_churn(None);
        let genesis_image = genesis_db.wal().expect("durable").image().to_vec();
        let ckpt_db = build_churn(Some(110));
        let wal = ckpt_db.wal().expect("durable");
        let (log_image, snap_image) = (wal.image().to_vec(), wal.snapshot_image().to_vec());
        let batch = if quick { 10 } else { 60 };
        let genesis_ns = measure_campaign(windows.runs, || {
            for _ in 0..batch {
                std::hint::black_box(
                    coddb::recovery::recover(
                        &genesis_image,
                        &[],
                        Dialect::Sqlite,
                        &BugRegistry::none(),
                    )
                    .unwrap(),
                );
            }
        }) / batch as f64;
        let ckpt_ns = measure_campaign(windows.runs, || {
            for _ in 0..batch {
                std::hint::black_box(
                    coddb::recovery::recover(
                        &log_image,
                        &snap_image,
                        Dialect::Sqlite,
                        &BugRegistry::none(),
                    )
                    .unwrap(),
                );
            }
        }) / batch as f64;
        let speedup = genesis_ns / ckpt_ns;
        println!(
            "{RECOVERY_REPLAY_CHECKPOINTED_SHAPE:<24} ckpt {ckpt_ns:>8.0} ns/iter   genesis {genesis_ns:>8.0} ns/iter   speedup {speedup:>5.2}x"
        );
        entries.push(format!(
            "    {:?}: {{\n      \"recovery_replay_checkpointed_ns_per_iter\": {:.0},\n      \"genesis_replay_ns_per_iter\": {:.0},\n      \"checkpointed_vs_genesis_speedup\": {:.2},\n      \"suffix_bytes\": {},\n      \"snapshot_bytes\": {}\n    }}",
            RECOVERY_REPLAY_CHECKPOINTED_SHAPE,
            ckpt_ns,
            genesis_ns,
            speedup,
            log_image.len(),
            snap_image.len()
        ));
    }

    // scrub_throughput: a full offline integrity pass (frame walk +
    // checksum verification + snapshot-seal structure check) over the
    // checkpointed churn images — the cost of asking "is this disk
    // lying to me", per pass, with the scanned byte count recorded.
    let run_scrub_shape = shape_filter
        .as_ref()
        .is_none_or(|f| f.iter().any(|s| s == SCRUB_THROUGHPUT_SHAPE));
    if run_scrub_shape {
        let db = build_churn(Some(110));
        let wal = db.wal().expect("durable");
        let (log_image, snap_image) = (wal.image().to_vec(), wal.snapshot_image().to_vec());
        let scrub_bytes = log_image.len() + snap_image.len();
        let batch = if quick { 10 } else { 60 };
        let scrub_ns = measure_campaign(windows.runs, || {
            for _ in 0..batch {
                let report = scrub_images(&log_image, &snap_image, &BugRegistry::none());
                assert!(report.clean(), "churn images must scrub clean");
                std::hint::black_box(report);
            }
        }) / batch as f64;
        println!(
            "{SCRUB_THROUGHPUT_SHAPE:<24} scrub {scrub_ns:>12.0} ns/iter   {scrub_bytes} bytes"
        );
        entries.push(format!(
            "    {:?}: {{\n      \"scrub_ns_per_iter\": {:.0},\n      \"scrub_bytes\": {}\n    }}",
            SCRUB_THROUGHPUT_SHAPE, scrub_ns, scrub_bytes
        ));
    }

    // wal_commit_nospace: the clean-abort path of a statement hitting a
    // full disk (append refused, catalog state rolled back, session still
    // serving) against the identical statement committing unconstrained —
    // graceful degradation must not cost more than the commit it refuses.
    let run_nospace_shape = shape_filter
        .as_ref()
        .is_none_or(|f| f.iter().any(|s| s == WAL_COMMIT_NOSPACE_SHAPE));
    if run_nospace_shape {
        let ins =
            &coddb::parser::parse_statements("INSERT INTO w VALUES (1, 'x'), (2, 'y'), (3, 'z')")
                .unwrap()[0];
        let batch = if quick { 300 } else { 3_000 };
        let unlimited_ns = measure_campaign(windows.runs, || {
            let mut db = Database::new(Dialect::Sqlite);
            db.execute_sql("CREATE TABLE w (a INT, b TEXT)").unwrap();
            db.set_storage_mode(StorageMode::Durable);
            for _ in 0..batch {
                std::hint::black_box(db.execute(ins).unwrap());
            }
        }) / batch as f64;
        let nospace_ns = measure_campaign(windows.runs, || {
            let mut db = Database::new(Dialect::Sqlite);
            db.execute_sql("CREATE TABLE w (a INT, b TEXT)").unwrap();
            db.set_storage_mode(StorageMode::Durable);
            let full = db.wal().expect("durable").ops();
            db.set_media_plan(MediaPlan {
                site: StorageSite::Log,
                mode: MediaMode::NoSpace { at_op: full },
            });
            for _ in 0..batch {
                std::hint::black_box(db.execute(ins).unwrap_err());
            }
        }) / batch as f64;
        let overhead = nospace_ns / unlimited_ns;
        println!(
            "{WAL_COMMIT_NOSPACE_SHAPE:<24} abort {nospace_ns:>12.0} ns/iter   unlimited {unlimited_ns:>12.0} ns/iter   overhead {overhead:>5.2}x"
        );
        entries.push(format!(
            "    {:?}: {{\n      \"nospace_abort_ns_per_iter\": {:.0},\n      \"unlimited_ns_per_iter\": {:.0},\n      \"abort_overhead\": {:.2}\n    }}",
            WAL_COMMIT_NOSPACE_SHAPE, nospace_ns, unlimited_ns, overhead
        ));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"engine_exec bind_vs_walk\",\n  \"unit\": \"ns/iter\",\n  \"shapes\": {{\n{}\n  }}\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write BENCH_engine.json");
    println!("wrote {out_path}");
}
