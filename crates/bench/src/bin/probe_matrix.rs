//! Development probe: which logic mutants does each oracle detect, and
//! how fast? Used to validate the Table 2 detectability matrix.

use coddb::bugs::{BaselineOracle, BugId};
use coddtest::runner::detects_bug;

fn main() {
    let budget: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    let oracles = ["codd", "norec", "tlp", "dqe"];
    println!(
        "{:<42} {:>8} {:>8} {:>8} {:>8}  expected",
        "bug", "codd", "norec", "tlp", "dqe"
    );
    for bug in BugId::logic_bugs() {
        print!("{:<42}", bug.name());
        for oracle in oracles {
            let hit = detects_bug(oracle, bug, budget, 1);
            match hit {
                Some((tests, _)) => print!(" {tests:>8}"),
                None => print!("        -"),
            }
        }
        let expected: Vec<&str> = bug
            .baseline_detectable()
            .iter()
            .map(|o| match o {
                BaselineOracle::NoRec => "norec",
                BaselineOracle::Tlp => "tlp",
                BaselineOracle::Dqe => "dqe",
            })
            .collect();
        println!("  [{}]", expected.join(","));
    }
}
