//! Figure 3 — impact of expression complexity on unique query plans.
//!
//! Same sweep as Figure 2 ("CODDTest & Expression", MaxDepth 1..=15) but
//! reporting the number of distinct plan fingerprints per fixed test
//! budget. The paper finds a decreasing trend mirroring throughput:
//! deeper expressions execute fewer tests in a fixed time, and extra
//! expression depth alone does not open new plan shapes the way
//! subqueries do.
//!
//! Usage: `fig3_depth_plans [--budget N] [--seed S]` (default 4000).

use coddb::Dialect;
use coddtest::codd::CoddTest;
use coddtest::runner::{run_campaign, CampaignConfig};
use coddtest_bench::{arg_budget, arg_seed, Table};
use sqlgen::GenConfig;

fn main() {
    let budget = arg_budget(4_000);
    let seed = arg_seed(0xC0DD);
    println!("# Figure 3 — MaxDepth vs unique query plans");
    println!("# CODDTest & Expression, fixed wall-time emulated by plans/second\n");

    let mut table = Table::new(&[
        "MaxDepth",
        "plans per {budget} tests",
        "plans/s (fixed time)",
    ]);
    for depth in 1..=15u32 {
        let gen = GenConfig {
            allow_subqueries: false,
            ..GenConfig::with_max_depth(depth)
        };
        let cfg = CampaignConfig {
            gen: gen.clone(),
            tests: budget,
            seed,
            ..CampaignConfig::new(Dialect::Sqlite)
        };
        let mut oracle: Box<dyn coddtest::Oracle> = Box::new(CoddTest::with_config(gen));
        let result = run_campaign(oracle.as_mut(), &cfg);
        // The paper's fixed-duration run sees fewer tests at high depth;
        // normalizing plans by elapsed time reproduces that effect.
        let plans_per_s = result.unique_plans as f64 / result.elapsed.as_secs_f64();
        table.row(&[
            depth.to_string(),
            result.unique_plans.to_string(),
            format!("{plans_per_s:.0}"),
        ]);
    }
    table.print();
    println!(
        "\nshape check: plans/s decreases with depth (paper Figure 3); compare with \
         the subquery configuration of Table 3, whose plan counts dwarf all of these."
    );
}
