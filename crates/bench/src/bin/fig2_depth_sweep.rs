//! Figure 2 — impact of expression complexity (`MaxDepth`) on per-query
//! execution time and test throughput.
//!
//! Mirrors the paper's setup: the "CODDTest & Expression" configuration
//! (no subqueries) swept over MaxDepth 1..=15. The paper reports the
//! average execution time per query rising ~9.91× from depth 1 to 15 and
//! throughput dropping ~89.4%; the shape (monotone rise / monotone fall)
//! is the reproduction target.
//!
//! Usage: `fig2_depth_sweep [--budget N] [--seed S]` (default 4000 tests
//! per depth).

use coddb::Dialect;
use coddtest::codd::CoddTest;
use coddtest::runner::{run_campaign, CampaignConfig};
use coddtest_bench::{arg_budget, arg_seed, Table};
use sqlgen::GenConfig;

fn main() {
    let budget = arg_budget(4_000);
    let seed = arg_seed(0xC0DD);
    println!("# Figure 2 — MaxDepth vs per-query time and throughput");
    println!("# CODDTest & Expression, {budget} tests per depth, seed {seed}\n");

    let mut table = Table::new(&[
        "MaxDepth",
        "time/query (us)",
        "tests/s",
        "ok queries",
        "err queries",
    ]);
    let mut first_time = None;
    let mut last_time = 0.0f64;
    let mut first_rate = None;
    let mut last_rate = 0.0f64;

    for depth in 1..=15u32 {
        // Larger tables than the campaign default: expression evaluation
        // per row then dominates per-test overhead, as on a real server.
        let gen = GenConfig {
            allow_subqueries: false,
            ..GenConfig::with_max_depth(depth)
        };
        let cfg = CampaignConfig {
            gen: gen.clone(),
            tests: budget,
            seed,
            ..CampaignConfig::new(Dialect::Sqlite)
        };
        let mut oracle: Box<dyn coddtest::Oracle> = Box::new(CoddTest::with_config(gen));
        let result = run_campaign(oracle.as_mut(), &cfg);
        let tpq = result.time_per_query_us();
        let rate = result.tests_run as f64 / result.elapsed.as_secs_f64();
        first_time.get_or_insert(tpq);
        last_time = tpq;
        first_rate.get_or_insert(rate);
        last_rate = rate;
        table.row(&[
            depth.to_string(),
            format!("{tpq:.2}"),
            format!("{rate:.0}"),
            result.successful_queries.to_string(),
            result.unsuccessful_queries.to_string(),
        ]);
    }
    table.print();

    let time_ratio = last_time / first_time.unwrap_or(1.0);
    let rate_drop = 100.0 * (1.0 - last_rate / first_rate.unwrap_or(1.0));
    println!("\ntime/query grows {time_ratio:.2}x from depth 1 to 15 (paper: 9.91x)");
    println!("throughput drops {rate_drop:.1}% from depth 1 to 15 (paper: 89.4%)");
}
