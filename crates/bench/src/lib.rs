//! Shared helpers for the table/figure harness binaries.
//!
//! Each binary regenerates one artefact of the paper's evaluation section
//! (see DESIGN.md's experiment index). The binaries print both the
//! measured values and — where applicable — the paper's reported numbers
//! side by side, so EXPERIMENTS.md can record paper-vs-measured shape
//! comparisons directly from their output.

use coddb::{Database, Dialect};

/// The engine benchmark query shapes, shared by the `engine_exec` /
/// `bind_vs_walk` criterion benches and the `bench_engine` runner that
/// records the checked-in perf trajectory (`BENCH_engine.json`) — one
/// definition so the trajectory stays comparable across PRs.
pub const QUERY_SHAPES: &[(&str, &str)] = &[
    (
        "seq_filter",
        "SELECT COUNT(*) FROM t0 WHERE c0 % 3 = 1 AND c2 > 10.0",
    ),
    ("index_probe", "SELECT COUNT(*) FROM t0 WHERE c0 > 150"),
    (
        "join",
        "SELECT COUNT(*) FROM t0 INNER JOIN t1 ON t0.c0 = t1.c0",
    ),
    (
        "group_agg",
        "SELECT c0 % 7, COUNT(*), AVG(c2) FROM t0 GROUP BY c0 % 7",
    ),
    (
        "subquery_correlated",
        "SELECT COUNT(*) FROM t1 WHERE t1.c0 < \
         (SELECT AVG(t0.c0) FROM t0 WHERE t0.c0 = t1.c0)",
    ),
    (
        "subquery_noncorrelated",
        "SELECT COUNT(*) FROM t0 WHERE c0 IN (SELECT c0 FROM t1 WHERE c0 > 5)",
    ),
    (
        "subquery_cached",
        "SELECT COUNT(*) FROM t0 WHERE c2 < (SELECT AVG(c0) FROM t1) \
         AND c0 <> (SELECT MAX(c0) FROM t1)",
    ),
    (
        "set_op",
        "SELECT c0 FROM t0 WHERE c0 < 30 UNION SELECT c0 FROM t1",
    ),
    (
        "join_large",
        "SELECT COUNT(*) FROM t2 INNER JOIN t3 ON t2.c0 = t3.c0",
    ),
    // Wide rows: before shared rows, every scanned row deep-cloned 10
    // values (two of them TEXT) into the pipeline per query.
    (
        "seq_filter_wide",
        "SELECT COUNT(*) FROM t4 WHERE c0 % 3 = 1 AND c9 > 10.0",
    ),
    // Few distinct outer keys: the keyed subquery memo executes the
    // correlated subquery once per key (6), not once per outer row (240).
    (
        "subquery_correlated_lowcard",
        "SELECT COUNT(*) FROM t5 WHERE t5.v < (SELECT AVG(t0.c0) FROM t0 WHERE t0.c0 % 6 = t5.grp)",
    ),
    // Highly selective predicate: the vectorized AND evaluates its right
    // arm over a thin selection vector (~4 of 200 lanes).
    (
        "seq_filter_selective",
        "SELECT COUNT(*) FROM t0 WHERE c0 % 50 = 7 AND c2 > 10.0",
    ),
    // Wide grouped aggregation: five aggregates over the 10-column table,
    // exercising batched aggregate-argument evaluation per slot.
    (
        "group_agg_wide",
        "SELECT c0 % 5, COUNT(*), AVG(c2), SUM(c3), MIN(c8), MAX(c9) \
         FROM t4 GROUP BY c0 % 5",
    ),
    // Selective range over the 3000-row indexed table: the seek emits
    // ~40 postings (the consumed conjunct alone bounds the key range)
    // where the ScanOnly baseline filters all 3000 rows.
    ("index_range_scan", "SELECT COUNT(*) FROM t6 WHERE k < 40"),
    // Ordered seek with sort elimination: the index emits the tail of the
    // key range already ordered, so the LIMIT sees presorted rows; the
    // ScanOnly baseline scans, filters, and sorts before limiting.
    (
        "order_by_indexed",
        "SELECT * FROM t6 WHERE k > 2980 ORDER BY k LIMIT 10",
    ),
];

/// The campaign-runner shape: `bench_engine` times a whole `codd` campaign
/// through `run_campaign` vs `run_campaign_parallel` and records
/// `parallel_vs_serial_speedup` (plus the thread and core counts — the
/// speedup is core-bound) in `BENCH_engine.json`. Not a SQL shape, so it
/// lives outside [`QUERY_SHAPES`].
pub const CAMPAIGN_PARALLEL_SHAPE: &str = "campaign_parallel";

/// The durable-storage shapes: `bench_engine` times per-statement WAL
/// commit overhead (`wal_commit_ns_per_iter`, against a volatile baseline)
/// and full log replay (`recovery_replay_ns_per_iter`) so the storage
/// layer's cost rides the same checked-in trajectory as the query shapes.
/// Not SQL shapes, so they live outside [`QUERY_SHAPES`].
pub const WAL_COMMIT_SHAPE: &str = "wal_commit";
pub const RECOVERY_REPLAY_SHAPE: &str = "recovery_replay";

/// The checkpoint shapes: `bench_engine` times a full
/// [`coddb::Database::checkpoint`] over a populated catalog
/// (`checkpoint_write_ns_per_iter`, with the snapshot size recorded) and
/// snapshot+suffix recovery against full genesis replay of the same
/// workload (`recovery_replay_checkpointed_ns_per_iter`, with the
/// `checkpointed_vs_genesis_speedup` that justifies checkpointing at
/// all). Not SQL shapes, so they live outside [`QUERY_SHAPES`].
pub const CHECKPOINT_WRITE_SHAPE: &str = "checkpoint_write";
pub const RECOVERY_REPLAY_CHECKPOINTED_SHAPE: &str = "recovery_replay_checkpointed";

/// The media-fault shapes: `bench_engine` times a full
/// [`coddb::recovery::scrub_images`] pass over a checkpointed log +
/// snapshot pair (`scrub_ns_per_iter`, with the scanned byte count as
/// `scrub_bytes`) and the clean-abort path of a statement hitting a full
/// disk (`nospace_abort_ns_per_iter`, against the unconstrained commit as
/// `unlimited_ns_per_iter`, ratio recorded as `abort_overhead`). Not SQL
/// shapes, so they live outside [`QUERY_SHAPES`].
pub const SCRUB_THROUGHPUT_SHAPE: &str = "scrub_throughput";
pub const WAL_COMMIT_NOSPACE_SHAPE: &str = "wal_commit_nospace";

/// The index-maintenance shape: `bench_engine` times the same DML batch
/// against an indexed and an unindexed copy of one table and records the
/// per-statement `index_maintenance_overhead` — the write-side price of
/// the ordered index layer, riding the same trajectory as the read-side
/// seek speedups. Not a SQL shape, so it lives outside [`QUERY_SHAPES`].
pub const DML_INDEX_MAINTENANCE_SHAPE: &str = "dml_index_maintenance";

/// Shapes whose dominant operator is a join — `bench_engine` additionally
/// times these with [`coddb::JoinMode::NestedLoop`] forced, recording the
/// hash-join speedup over the bound nested loop.
pub fn is_join_shape(name: &str) -> bool {
    name.starts_with("join")
}

/// Shapes dominated by scan traffic — `bench_engine` additionally times
/// these with [`coddb::ScanMode::Cloning`] forced, recording the
/// zero-copy pipeline's speedup over per-row deep cloning.
pub fn is_scan_shape(name: &str) -> bool {
    matches!(
        name,
        "seq_filter" | "seq_filter_wide" | "subquery_correlated" | "subquery_correlated_lowcard"
    )
}

/// Shapes whose access path is an index seek — `bench_engine`
/// additionally times these with [`coddb::AccessMode::ScanOnly`] forced,
/// recording `scan_ns_per_iter` and the `indexed_vs_scan_speedup` of the
/// planner-selected seek over the full-scan pipeline (for
/// `order_by_indexed` that includes the eliminated sort).
pub fn is_indexed_shape(name: &str) -> bool {
    matches!(
        name,
        "index_probe" | "index_range_scan" | "order_by_indexed"
    )
}

/// Shapes dominated by vectorizable clause evaluation — `bench_engine`
/// additionally times these with [`coddb::EvalMode::RowAtATime`] forced,
/// recording the chunked evaluator's speedup over the row-at-a-time
/// interpreter on otherwise identical machinery.
pub fn is_vec_shape(name: &str) -> bool {
    matches!(
        name,
        "seq_filter" | "seq_filter_selective" | "seq_filter_wide" | "group_agg" | "group_agg_wide"
    )
}

/// The database state the engine benchmark shapes run against.
pub fn engine_setup() -> Database {
    let mut db = Database::new(Dialect::Sqlite);
    db.execute_sql("CREATE TABLE t0 (c0 INT, c1 TEXT, c2 REAL)")
        .unwrap();
    db.execute_sql("CREATE TABLE t1 (c0 INT, c1 TEXT)").unwrap();
    db.execute_sql("CREATE INDEX i0 ON t0 (c0)").unwrap();
    for chunk in 0..4 {
        let rows: Vec<String> = (0..50)
            .map(|i| {
                let v = chunk * 50 + i;
                format!("({v}, 'r{v}', {v}.5)")
            })
            .collect();
        db.execute_sql(&format!("INSERT INTO t0 VALUES {}", rows.join(",")))
            .unwrap();
    }
    let rows: Vec<String> = (0..40).map(|i| format!("({i}, 'x{i}')")).collect();
    db.execute_sql(&format!("INSERT INTO t1 VALUES {}", rows.join(",")))
        .unwrap();
    // Scaled build/probe sides for the `join_large` shape: 600 x 400 rows
    // (240k probed pairs for the nested loop), with duplicate keys and a
    // sprinkling of NULL keys to exercise the hash join's chaining and
    // NULL-never-matches paths.
    db.execute_sql("CREATE TABLE t2 (c0 INT); CREATE TABLE t3 (c0 INT)")
        .unwrap();
    for chunk in 0..6 {
        let rows: Vec<String> = (0..100)
            .map(|i| {
                let v = chunk * 100 + i;
                if v % 97 == 0 {
                    "(NULL)".to_string()
                } else {
                    format!("({})", v % 500)
                }
            })
            .collect();
        db.execute_sql(&format!("INSERT INTO t2 VALUES {}", rows.join(",")))
            .unwrap();
    }
    for chunk in 0..4 {
        let rows: Vec<String> = (0..100)
            .map(|i| {
                let v = chunk * 100 + i;
                if v % 89 == 0 {
                    "(NULL)".to_string()
                } else {
                    format!("({v})")
                }
            })
            .collect();
        db.execute_sql(&format!("INSERT INTO t3 VALUES {}", rows.join(",")))
            .unwrap();
    }
    // Wide table for the `seq_filter_wide` shape: 10 columns (TEXT among
    // them), 300 rows — per-row cloning cost scales with row width, row
    // sharing does not.
    db.execute_sql(
        "CREATE TABLE t4 (c0 INT, c1 TEXT, c2 REAL, c3 INT, c4 TEXT, \
         c5 REAL, c6 INT, c7 INT, c8 REAL, c9 REAL)",
    )
    .unwrap();
    for chunk in 0..3 {
        let rows: Vec<String> = (0..100)
            .map(|i| {
                let v = chunk * 100 + i;
                format!(
                    "({v}, 'name{v}', {v}.25, {}, 'tag{}', {}.5, {}, {}, {}.75, {v}.5)",
                    v * 2,
                    v % 17,
                    v % 7,
                    v % 3,
                    v + 1,
                    v % 13
                )
            })
            .collect();
        db.execute_sql(&format!("INSERT INTO t4 VALUES {}", rows.join(",")))
            .unwrap();
    }
    // Low-cardinality correlated outer for `subquery_correlated_lowcard`:
    // 240 rows over 6 distinct grouping keys.
    db.execute_sql("CREATE TABLE t5 (grp INT, v INT)").unwrap();
    for chunk in 0..2 {
        let rows: Vec<String> = (0..120)
            .map(|i| {
                let v = chunk * 120 + i;
                format!("({}, {})", v % 6, v % 150)
            })
            .collect();
        db.execute_sql(&format!("INSERT INTO t5 VALUES {}", rows.join(",")))
            .unwrap();
    }
    // Larger indexed table for the seek shapes: 3000 distinct keys, so a
    // selective range probe touches ~1% of what the full scan filters.
    db.execute_sql("CREATE TABLE t6 (k INT, v TEXT)").unwrap();
    db.execute_sql("CREATE INDEX i6 ON t6 (k)").unwrap();
    for chunk in 0..30 {
        let rows: Vec<String> = (0..100)
            .map(|i| {
                let v = chunk * 100 + i;
                format!("({v}, 'v{v}')")
            })
            .collect();
        db.execute_sql(&format!("INSERT INTO t6 VALUES {}", rows.join(",")))
            .unwrap();
    }
    db
}

/// Parse `--budget N` / first positional integer from argv, with default.
pub fn arg_budget(default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == "--budget" {
            if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                return v;
            }
        }
    }
    args.get(1).and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Parse `--seed N` from argv, with default.
pub fn arg_seed(default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == "--seed" {
            if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                return v;
            }
        }
    }
    default
}

/// Render a simple aligned table.
pub struct Table {
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let parts: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect();
            println!("| {} |", parts.join(" | "));
        };
        line(&self.headers);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("|-{}-|", sep.join("-|-"));
        for row in &self.rows {
            line(row);
        }
    }
}

/// Format a large count with thousands separators.
pub fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_formatting() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1000), "1,000");
        assert_eq!(fmt_count(2086646), "2,086,646");
    }

    #[test]
    fn table_rejects_bad_arity() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        assert_eq!(t.rows.len(), 1);
    }
}
