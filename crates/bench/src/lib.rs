//! Shared helpers for the table/figure harness binaries.
//!
//! Each binary regenerates one artefact of the paper's evaluation section
//! (see DESIGN.md's experiment index). The binaries print both the
//! measured values and — where applicable — the paper's reported numbers
//! side by side, so EXPERIMENTS.md can record paper-vs-measured shape
//! comparisons directly from their output.

/// Parse `--budget N` / first positional integer from argv, with default.
pub fn arg_budget(default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == "--budget" {
            if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                return v;
            }
        }
    }
    args.get(1).and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Parse `--seed N` from argv, with default.
pub fn arg_seed(default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == "--seed" {
            if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                return v;
            }
        }
    }
    default
}

/// Render a simple aligned table.
pub struct Table {
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let parts: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect();
            println!("| {} |", parts.join(" | "));
        };
        line(&self.headers);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("|-{}-|", sep.join("-|-"));
        for row in &self.rows {
            line(row);
        }
    }
}

/// Format a large count with thousands separators.
pub fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_formatting() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1000), "1,000");
        assert_eq!(fmt_count(2086646), "2,086,646");
    }

    #[test]
    fn table_rejects_bad_arity() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        assert_eq!(t.rows.len(), 1);
    }
}
