//! EET baseline — Equivalent Expression Transformation (Jiang & Su,
//! OSDI 2024), the concurrent work the paper compares against in §4.2.
//!
//! EET rewrites a predicate into a more complex but logically equivalent
//! form by composing tautologies and contradictions, then checks that the
//! query results are unchanged. Under SQL three-valued logic:
//!
//! * `q OR NOT q OR (q IS NULL)` is always TRUE,
//! * `q AND NOT q AND (q IS NOT NULL)` is always FALSE,
//!
//! so `p AND <tautology>` ≡ `p` and `p OR <contradiction>` ≡ `p`.

use coddb::ast::Expr;
use rand::RngExt;
use sqlgen::expr::ExprGen;
use sqlgen::query::{build_random_query, gen_from_context};
use sqlgen::{GenConfig, SchemaInfo};

use crate::{error_outcome, BugReport, Oracle, ReportKind, Session, TestOutcome};

const ORACLE_NAME: &str = "eet";

/// The EET oracle.
pub struct Eet {
    config: GenConfig,
}

#[allow(clippy::derivable_impls)]
impl Default for Eet {
    fn default() -> Self {
        // EET transforms expressions of arbitrary queries, including ones
        // with subqueries.
        Eet {
            config: GenConfig::default(),
        }
    }
}
// (kept as an explicit impl: the default carries a semantic choice)

/// `q OR NOT q OR (q IS NULL)` — TRUE for every q under 3VL.
fn tautology(q: Expr) -> Expr {
    Expr::or(
        Expr::or(q.clone(), Expr::not(q.clone())),
        Expr::IsNull {
            expr: Box::new(q),
            negated: false,
        },
    )
}

/// `q AND NOT q AND (q IS NOT NULL)` — FALSE for every q under 3VL.
fn contradiction(q: Expr) -> Expr {
    Expr::and(
        Expr::and(q.clone(), Expr::not(q.clone())),
        Expr::IsNull {
            expr: Box::new(q),
            negated: true,
        },
    )
}

/// Apply one random equivalence-preserving transformation to `p`.
pub fn transform(p: &Expr, q: Expr, choice: u32) -> Expr {
    match choice % 3 {
        0 => Expr::and(p.clone(), tautology(q)),
        1 => Expr::or(p.clone(), contradiction(q)),
        _ => Expr::not(Expr::not(p.clone())),
    }
}

impl Oracle for Eet {
    fn name(&self) -> &'static str {
        ORACLE_NAME
    }

    fn run_one(
        &mut self,
        s: &mut Session,
        schema: &SchemaInfo,
        rng: &mut dyn rand::Rng,
    ) -> TestOutcome {
        let dialect = s.dialect();
        let from = gen_from_context(rng, schema, &self.config, dialect);
        let mut gen = ExprGen::new(dialect, &self.config, schema, &from.scope);
        let p = gen.gen_predicate(rng, self.config.max_depth.max(1));

        // EET explores deep transformation stacks; apply 1-3 rounds.
        let mut transformed = p.clone();
        for _ in 0..rng.random_range(1..=3) {
            let q = gen.gen_predicate(rng, 1);
            transformed = transform(&transformed, q, rng.random_range(0..3));
        }

        let original = build_random_query(rng, &from, Some(p));
        let mut rewritten = original.clone();
        if let Some(core) = rewritten.core_mut() {
            core.where_clause = Some(transformed);
        }

        let case = vec![
            ("original".into(), original.to_string()),
            ("transformed".into(), rewritten.to_string()),
        ];
        let o_rel = match s.query(&original) {
            Ok(r) => r,
            Err(e) => return error_outcome(ORACLE_NAME, &e, case),
        };
        let t_rel = match s.query(&rewritten) {
            Ok(r) => r,
            Err(e) => return error_outcome(ORACLE_NAME, &e, case),
        };
        if o_rel.multiset_eq(&t_rel) {
            TestOutcome::Pass
        } else {
            TestOutcome::Bug(BugReport {
                oracle: ORACLE_NAME,
                kind: ReportKind::LogicDiscrepancy,
                queries: case,
                detail: format!(
                    "original returned {} row(s), transformed returned {}",
                    o_rel.row_count(),
                    t_rel.row_count()
                ),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coddb::{Database, Dialect};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sqlgen::state::generate_state;

    #[test]
    fn transforms_are_equivalence_preserving() {
        // Brute-force over the 3VL truth table: for p,q in {T,F,NULL} the
        // transformed predicate evaluates to the same truth value as p.
        let mut db = Database::new(Dialect::Sqlite);
        db.execute_sql("CREATE TABLE t (p INT, q INT)").unwrap();
        let vals = ["1", "0", "NULL"];
        for p in vals {
            for q in vals {
                db.execute_sql("DELETE FROM t").unwrap();
                db.execute_sql(&format!("INSERT INTO t VALUES ({p}, {q})"))
                    .unwrap();
                let base = db.query_sql("SELECT COUNT(*) FROM t WHERE p").unwrap();
                for choice in 0..3 {
                    let tp = transform(&Expr::bare_col("p"), Expr::bare_col("q"), choice);
                    let tr = db
                        .query_sql(&format!("SELECT COUNT(*) FROM t WHERE {tp}"))
                        .unwrap();
                    assert_eq!(
                        base.rows, tr.rows,
                        "choice {choice} not equivalent for p={p}, q={q}: {tp}"
                    );
                }
            }
        }
    }

    #[test]
    fn no_false_alarms_on_clean_engines() {
        for dialect in Dialect::ALL {
            let mut oracle = Eet::default();
            for seed in 0..20u64 {
                let mut rng = StdRng::seed_from_u64(17_000 + seed);
                let (stmts, schema) = generate_state(&mut rng, dialect, &GenConfig::default());
                let mut db = Database::new(dialect);
                for st in &stmts {
                    db.execute(st).unwrap();
                }
                let mut session = Session::new(&mut db);
                for _ in 0..10 {
                    if let TestOutcome::Bug(r) = oracle.run_one(&mut session, &schema, &mut rng) {
                        panic!("EET false alarm on clean {dialect}:\n{}", r.to_display());
                    }
                }
            }
        }
    }
}
