//! The crash-recovery differential oracle.
//!
//! Each test is a self-contained crash scenario: generate a schema-plus-
//! data script with a DML tail, draw a deterministic checkpoint schedule
//! (0–2 [`Database::checkpoint`] calls at seeded statement positions),
//! count the WAL operations the checkpointed run produces, draw a
//! deterministic [`FaultPlan`] over that range — so seeded crashes land
//! inside snapshot writes and the truncation step, not just DML traffic —
//! and check, via
//! [`coddb::recovery::recovery_divergence_checkpointed`], that recovering
//! the surviving snapshot + log-suffix images reconstructs *exactly* the
//! committed prefix a never-crashed engine would hold, from exactly the
//! newest durable snapshot.
//!
//! The session's [`coddb::BugRegistry`] rides along into both sides of
//! the differential: injected *engine* mutants corrupt the faulted run
//! and the reference run identically (the WAL logs post-bug effects), so
//! they cancel out, while *recovery* mutants
//! ([`coddb::bugs::RecoveryBugId`]) hook only the scan/replay path and
//! surface as divergences — campaigns hunt recovery bugs with the same
//! machinery they use for optimizer bugs.
//!
//! Reproduction follows the campaign contract: the script seed and fault
//! seed are drawn from the test's seeded rng, so a `(campaign_seed,
//! state_idx, test_idx)` coordinate re-derives the exact crash scenario,
//! and every finding records both seeds.

use coddb::ast::{Expr, InsertSource, Statement};
use coddb::recovery::recovery_divergence_media;
use coddb::wal::{FaultPlan, MediaPlan, StorageMode};
use coddb::Database;
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use sqlgen::state::{generate_state, random_value};
use sqlgen::{GenConfig, SchemaInfo};

use crate::{BugReport, Oracle, ReportKind, Session, TestOutcome};

/// The crash-recovery oracle.
#[derive(Debug, Default)]
pub struct Recover;

/// Generation profile for the per-test crash script: small states so each
/// test stays cheap, DML-heavy so crash points land inside interesting
/// multi-record statements.
fn script_gen_config() -> GenConfig {
    GenConfig {
        max_tables: 2,
        max_rows: 4,
        ..GenConfig::default()
    }
}

/// Append a randomized DML tail to the generated schema script so the log
/// interleaves DDL with multi-row INSERT/UPDATE/DELETE traffic.
fn push_dml_tail(script: &mut Vec<Statement>, schema: &SchemaInfo, rng: &mut StdRng) {
    let tables = schema.base_tables();
    if tables.is_empty() {
        return;
    }
    let n = rng.random_range(3..=8usize);
    for _ in 0..n {
        let t = tables[rng.random_range(0..tables.len())];
        let filter = |rng: &mut StdRng| -> Option<Expr> {
            if t.columns.is_empty() || rng.random_bool(0.3) {
                return None;
            }
            let (name, ty) = &t.columns[rng.random_range(0..t.columns.len())];
            Some(Expr::eq(
                Expr::bare_col(name.clone()),
                Expr::lit(random_value(rng, *ty)),
            ))
        };
        match rng.random_range(0..3u32) {
            0 => {
                let rows = (0..rng.random_range(1..=3usize))
                    .map(|_| {
                        t.columns
                            .iter()
                            .map(|(_, ty)| Expr::lit(random_value(rng, *ty)))
                            .collect()
                    })
                    .collect();
                script.push(Statement::Insert {
                    table: t.name.clone(),
                    columns: Vec::new(),
                    source: InsertSource::Values(rows),
                });
            }
            1 => {
                let (name, ty) = &t.columns[rng.random_range(0..t.columns.len())];
                script.push(Statement::Update {
                    table: t.name.clone(),
                    sets: vec![(name.clone(), Expr::lit(random_value(rng, *ty)))],
                    where_clause: filter(rng),
                });
            }
            _ => {
                script.push(Statement::Delete {
                    table: t.name.clone(),
                    where_clause: filter(rng),
                });
            }
        }
    }
}

impl Oracle for Recover {
    fn name(&self) -> &'static str {
        "recover"
    }

    fn run_one(
        &mut self,
        session: &mut Session,
        _schema: &SchemaInfo,
        rng: &mut dyn Rng,
    ) -> TestOutcome {
        let script_seed = rng.next_u64();
        let fault_seed = rng.next_u64();
        let ckpt_seed = rng.next_u64();
        // Drawn after the existing seeds so their streams stay stable: a
        // pre-media campaign coordinate still derives the same script,
        // fault plan and checkpoint schedule.
        let media_seed = rng.next_u64();
        let dialect = session.dialect();
        let bugs = session.db.bugs().clone();

        let mut srng = StdRng::seed_from_u64(script_seed);
        let (mut script, script_schema) = generate_state(&mut srng, dialect, &script_gen_config());
        push_dml_tail(&mut script, &script_schema, &mut srng);

        // Draw the checkpoint schedule: most scenarios checkpoint once or
        // twice mid-script so crashes land in snapshot writes and the
        // truncation step too; some stay checkpoint-free so the pure
        // genesis path keeps its coverage.
        let mut crng = StdRng::seed_from_u64(ckpt_seed);
        let n_ckpts = match crng.random_range(0..4u32) {
            0 => 0,
            1 => 1,
            _ => 2,
        };
        let mut checkpoints: Vec<usize> = (0..n_ckpts)
            .map(|_| crng.random_range(0..script.len()))
            .collect();
        checkpoints.sort_unstable();
        checkpoints.dedup();

        // Count the crash points this scenario exposes: a durable dry run
        // under the same mutants and the same checkpoint schedule, no
        // faults — snapshot frames and truncations count as ops too.
        let mut probe = Database::with_bugs(dialect, bugs.clone());
        probe.set_storage_mode(StorageMode::Durable);
        for (i, s) in script.iter().enumerate() {
            let _ = probe.execute(s);
            if checkpoints.contains(&i) {
                let _ = probe.checkpoint();
            }
        }
        let total_ops = probe.wal().expect("durable").ops();
        if total_ops == 0 {
            return TestOutcome::Skipped("script produced no durable operations".into());
        }

        let plan = FaultPlan::seeded(fault_seed, total_ops);
        let mplan = MediaPlan::seeded(media_seed, total_ops);
        match recovery_divergence_media(&script, &checkpoints, &plan, &mplan, dialect, &bugs) {
            None => TestOutcome::Pass,
            Some(detail) => {
                // A recovery *error* is always a bug here — unlike query
                // errors, there is no "expected" way for replaying a log
                // the engine itself wrote to fail — so it maps straight to
                // an internal-error report rather than through
                // `error_outcome`'s severity filter.
                let kind = if detail.starts_with("recovery failed:") {
                    ReportKind::InternalError
                } else {
                    ReportKind::LogicDiscrepancy
                };
                TestOutcome::Bug(BugReport {
                    oracle: "recover",
                    kind,
                    queries: script
                        .iter()
                        .map(|s| ("script".into(), s.to_string()))
                        .collect(),
                    detail: format!(
                        "{detail}\nrepro: script_seed={script_seed:#x} fault_seed={fault_seed:#x} \
                         ckpt_seed={ckpt_seed:#x} media_seed={media_seed:#x} {} \
                         checkpoints={checkpoints:?}\n{}",
                        plan.describe(),
                        mplan.describe()
                    ),
                })
            }
        }
    }
}

/// A harness-validation oracle that deterministically panics on a slice of
/// its tests — it exists so the campaign runners' panic isolation
/// (`catch_unwind` → `Crash`-kind finding) has a reproducible trigger.
/// Never use it to test an engine.
#[derive(Debug, Default)]
pub struct PanicProbe;

impl Oracle for PanicProbe {
    fn name(&self) -> &'static str {
        "panic-probe"
    }

    fn run_one(
        &mut self,
        _session: &mut Session,
        _schema: &SchemaInfo,
        rng: &mut dyn Rng,
    ) -> TestOutcome {
        if rng.next_u64().is_multiple_of(16) {
            panic!("injected oracle panic (harness validation)");
        }
        TestOutcome::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coddb::bugs::BugRegistry;
    use coddb::Dialect;

    #[test]
    fn clean_engine_passes_many_seeded_scenarios() {
        let mut db = Database::new(Dialect::Sqlite);
        let mut session = Session::new(&mut db);
        let schema = SchemaInfo::default();
        let mut oracle = Recover;
        let mut rng = StdRng::seed_from_u64(0xD15C);
        let mut completed = 0;
        for _ in 0..40 {
            match oracle.run_one(&mut session, &schema, &mut rng) {
                TestOutcome::Bug(r) => panic!("clean engine diverged: {}", r.to_display()),
                TestOutcome::Pass => completed += 1,
                TestOutcome::Skipped(_) => {}
            }
        }
        assert!(completed > 30, "only {completed}/40 scenarios completed");
    }

    #[test]
    fn engine_mutants_cancel_out_of_the_differential() {
        // An injected *engine* bug corrupts the faulted and reference runs
        // identically, so the recovery differential stays quiet — it hunts
        // recovery bugs, not logic bugs the other oracles own.
        let bugs = BugRegistry::only(coddb::BugId::CockroachOrShortCircuitFalse);
        let mut db = Database::with_bugs(Dialect::Cockroach, bugs);
        let mut session = Session::new(&mut db);
        let schema = SchemaInfo::default();
        let mut oracle = Recover;
        let mut rng = StdRng::seed_from_u64(0xABCD);
        for _ in 0..25 {
            if let TestOutcome::Bug(r) = oracle.run_one(&mut session, &schema, &mut rng) {
                panic!(
                    "engine mutant leaked into recovery differential: {}",
                    r.to_display()
                );
            }
        }
    }

    #[test]
    fn recovery_mutant_is_caught() {
        let bugs = BugRegistry::only_recovery(coddb::RecoveryBugId::ReorderCommitEffects);
        let mut db = Database::with_bugs(Dialect::Sqlite, bugs);
        let mut session = Session::new(&mut db);
        let schema = SchemaInfo::default();
        let mut oracle = Recover;
        let mut rng = StdRng::seed_from_u64(1);
        let hit = (0..60).any(|_| oracle.run_one(&mut session, &schema, &mut rng).is_bug());
        assert!(hit, "reorder mutant never surfaced in 60 scenarios");
    }

    #[test]
    fn checkpoint_mutant_is_caught() {
        // A checkpoint-path mutant needs scenarios whose seeded schedule
        // actually checkpoints (and, for this one, twice) — the oracle's
        // cadence must provide them within an ordinary campaign slice.
        let bugs = BugRegistry::only_recovery(coddb::RecoveryBugId::StaleSnapshotPreferred);
        let mut db = Database::with_bugs(Dialect::Sqlite, bugs);
        let mut session = Session::new(&mut db);
        let schema = SchemaInfo::default();
        let mut oracle = Recover;
        let mut rng = StdRng::seed_from_u64(7);
        let hit = (0..120).any(|_| oracle.run_one(&mut session, &schema, &mut rng).is_bug());
        assert!(hit, "stale-snapshot mutant never surfaced in 120 scenarios");
    }

    #[test]
    fn media_mutants_are_caught() {
        // Every media-fault mutant must surface within an ordinary
        // campaign slice: seeded media plans cover bit rot, both read-
        // fault regimes and disk-full appends.
        for bug in coddb::bugs::MediaBugId::ALL {
            let bugs = BugRegistry::only_media(bug);
            let mut db = Database::with_bugs(Dialect::Sqlite, bugs);
            let mut session = Session::new(&mut db);
            let schema = SchemaInfo::default();
            let mut oracle = Recover;
            let mut rng = StdRng::seed_from_u64(11);
            let hit = (0..250).any(|_| oracle.run_one(&mut session, &schema, &mut rng).is_bug());
            assert!(hit, "{} never surfaced in 250 scenarios", bug.name());
        }
    }

    #[test]
    fn finding_detail_names_the_media_plan() {
        let bugs = BugRegistry::only_media(coddb::bugs::MediaBugId::SalvagePastCorruptCommit);
        let mut db = Database::with_bugs(Dialect::Sqlite, bugs);
        let mut session = Session::new(&mut db);
        let schema = SchemaInfo::default();
        let mut oracle = Recover;
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..250 {
            if let TestOutcome::Bug(r) = oracle.run_one(&mut session, &schema, &mut rng) {
                assert!(
                    r.detail.contains("media_seed="),
                    "media seed missing: {}",
                    r.detail
                );
                assert!(
                    r.detail.contains("media:"),
                    "media describe missing: {}",
                    r.detail
                );
                return;
            }
        }
        panic!("salvage mutant never surfaced in 250 scenarios");
    }

    #[test]
    fn finding_detail_names_the_fault_plan_and_schedule() {
        let bugs = BugRegistry::only_recovery(coddb::RecoveryBugId::ReplayUncommitted);
        let mut db = Database::with_bugs(Dialect::Sqlite, bugs);
        let mut session = Session::new(&mut db);
        let schema = SchemaInfo::default();
        let mut oracle = Recover;
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..120 {
            if let TestOutcome::Bug(r) = oracle.run_one(&mut session, &schema, &mut rng) {
                assert!(
                    r.detail.contains("crash at op"),
                    "describe() missing: {}",
                    r.detail
                );
                assert!(
                    r.detail.contains("ckpt_seed="),
                    "ckpt seed missing: {}",
                    r.detail
                );
                assert!(
                    r.detail.contains("checkpoints="),
                    "schedule missing: {}",
                    r.detail
                );
                return;
            }
        }
        panic!("replay-uncommitted mutant never surfaced in 120 scenarios");
    }
}
