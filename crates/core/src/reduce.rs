//! Delta-debugging reducer for bug-inducing test cases.
//!
//! The paper reduces every case before reporting ("we manually reduced the
//! bug-inducing test cases", citing Zeller & Hildebrandt's
//! simplifying-and-isolating work). This module automates the two most
//! effective reductions for CODDTest cases:
//!
//! 1. **statement reduction** — drop setup statements while the original
//!    and folded queries still disagree,
//! 2. **expression shrinking** — replace sub-expressions of the original
//!    query's predicate with simpler nodes while the discrepancy persists.
//!
//! Crash-recovery findings reduce through the same discipline
//! ([`reduce_recovery`]): drop script statements, drop checkpoint
//! positions, and simplify the [`FaultPlan`] while the case still
//! *recovers incorrectly* — the recovered state diverges from the
//! committed prefix — under the given mutants and recovers correctly on a
//! clean engine.

use coddb::ast::{Expr, Select, Statement};
use coddb::bugs::BugRegistry;
use coddb::recovery::recovery_divergence_media;
use coddb::value::Value;
use coddb::wal::{FaultMode, FaultPlan, MediaMode, MediaPlan};
use coddb::{Database, Dialect};

/// A reducible CODDTest case: setup + the disagreeing query pair.
#[derive(Debug, Clone)]
pub struct ReducibleCase {
    pub setup: Vec<Statement>,
    pub original: Select,
    pub folded: Select,
}

impl ReducibleCase {
    /// Total size proxy (statement count + rendered query length).
    pub fn size(&self) -> usize {
        self.setup.len() * 100 + self.original.to_string().len()
    }
}

/// Does the case still reproduce a *mutant-caused* logic discrepancy?
///
/// Two conditions must hold, mirroring how a reporter validates a reduced
/// case against a fixed build:
///
/// 1. on the buggy engine both queries succeed and **disagree**,
/// 2. on a clean engine both queries succeed and **agree** (otherwise the
///    shrink merely produced two inequivalent queries, losing the bug).
pub fn still_failing(case: &ReducibleCase, dialect: Dialect, bugs: &BugRegistry) -> bool {
    let run = |bugs: BugRegistry| -> Option<(coddb::Relation, coddb::Relation)> {
        let mut db = Database::with_bugs(dialect, bugs);
        for s in &case.setup {
            if db.execute(s).is_err() {
                return None;
            }
        }
        let o = db.query(&case.original).ok()?;
        let f = db.query(&case.folded).ok()?;
        Some((o, f))
    };
    let Some((bo, bf)) = run(bugs.clone()) else {
        return false;
    };
    let Some((co, cf)) = run(BugRegistry::none()) else {
        return false;
    };
    !bo.multiset_eq(&bf) && co.multiset_eq(&cf)
}

/// Reduce a failing case to a (locally) minimal one. The result is
/// guaranteed to still fail.
pub fn reduce(case: &ReducibleCase, dialect: Dialect, bugs: &BugRegistry) -> ReducibleCase {
    assert!(
        still_failing(case, dialect, bugs),
        "cannot reduce a passing case"
    );
    let mut current = case.clone();

    // Phase 1: drop setup statements (greedy, repeated until fixpoint).
    loop {
        let mut progressed = false;
        let mut i = 0;
        while i < current.setup.len() {
            let mut candidate = current.clone();
            candidate.setup.remove(i);
            if still_failing(&candidate, dialect, bugs) {
                current = candidate;
                progressed = true;
            } else {
                i += 1;
            }
        }
        if !progressed {
            break;
        }
    }

    // Phase 2: shrink the original query's WHERE expression; mirror every
    // accepted shrink in the folded query when the same subtree exists.
    if let Some(where_clause) = current.original.core().and_then(|c| c.where_clause.clone()) {
        let shrunk = shrink_expr(&where_clause, &mut |e| {
            let mut candidate = current.clone();
            if let Some(core) = candidate.original.core_mut() {
                core.where_clause = Some(e.clone());
            }
            still_failing(&candidate, dialect, bugs)
        });
        if let Some(core) = current.original.core_mut() {
            core.where_clause = Some(shrunk);
        }
    }

    debug_assert!(still_failing(&current, dialect, bugs));
    current
}

/// A reducible crash-recovery case: the executed script, the checkpoint
/// schedule (statement indices after which the run checkpointed), and the
/// fault plan that crashed it.
#[derive(Debug, Clone)]
pub struct RecoveryCase {
    pub script: Vec<Statement>,
    /// 0-based statement indices after which [`coddb::Database::checkpoint`]
    /// ran; empty for a genesis-replay case.
    pub checkpoints: Vec<usize>,
    pub plan: FaultPlan,
    /// The orthogonal media-fault axis (at-rest rot, read faults,
    /// disk-full appends); [`MediaPlan::none`] for a pure crash case.
    pub media: MediaPlan,
}

impl RecoveryCase {
    /// Total size proxy: statement count, then checkpoint count, then a
    /// small penalty for a crash plan more complex than a clean lost
    /// write, then one for any media fault beyond a plain disk-full.
    pub fn size(&self) -> usize {
        let mode_cost = match self.plan.mode {
            _ if !self.plan.crashes() => 0,
            FaultMode::Lost => 1,
            FaultMode::Torn { .. } | FaultMode::Corrupt { .. } => 2,
        };
        let media_cost = match self.media.mode {
            MediaMode::None => 0,
            MediaMode::NoSpace { .. } => 1,
            MediaMode::Rot { .. } | MediaMode::TransientRead { .. } | MediaMode::PermanentRead => 2,
        };
        self.script.len() * 100 + self.checkpoints.len() * 10 + mode_cost + media_cost
    }
}

/// Does the case still *recover incorrectly* — mirror of [`still_failing`]
/// for crash-recovery findings?
///
/// 1. under `bugs`, recovery of the crashed script diverges from the
///    committed prefix, and
/// 2. on a clean engine the same scenario recovers exactly (otherwise the
///    shrink produced a script that fails for an unrelated reason).
pub fn recovery_still_failing(case: &RecoveryCase, dialect: Dialect, bugs: &BugRegistry) -> bool {
    // `recovery_divergence_media` delegates to the pure checkpointed
    // differential when the case carries no media fault, so one entry
    // point serves both kinds of case.
    recovery_divergence_media(
        &case.script,
        &case.checkpoints,
        &case.plan,
        &case.media,
        dialect,
        bugs,
    )
    .is_some()
        && recovery_divergence_media(
            &case.script,
            &case.checkpoints,
            &case.plan,
            &case.media,
            dialect,
            &BugRegistry::none(),
        )
        .is_none()
}

/// Fault plans simpler than `plan`, most-simple first: no crash at all,
/// then a plain lost write at an earlier operation, then the same fault
/// mode moved earlier, then the same crash point downgraded to a lost
/// write.
fn simpler_plans(plan: &FaultPlan) -> Vec<FaultPlan> {
    if !plan.crashes() {
        // A non-crashing plan is already minimal.
        return Vec::new();
    }
    let mut out = vec![FaultPlan::none()];
    for op in 0..plan.crash_op {
        out.push(FaultPlan {
            crash_op: op,
            mode: FaultMode::Lost,
        });
    }
    if !matches!(plan.mode, FaultMode::Lost) {
        for op in 0..plan.crash_op {
            out.push(FaultPlan {
                crash_op: op,
                mode: plan.mode,
            });
        }
        out.push(FaultPlan {
            crash_op: plan.crash_op,
            mode: FaultMode::Lost,
        });
    }
    out
}

/// Media plans simpler than `media`, most-simple first: no media fault at
/// all, then a transient read fault that heals sooner, or a disk that
/// fills earlier (a smaller `at_op` means less committed history before
/// the refusal). Bit rot and permanent read faults have no intermediate
/// shrink beyond removal.
fn simpler_media(media: &MediaPlan) -> Vec<MediaPlan> {
    if !media.faults() {
        return Vec::new();
    }
    let mut out = vec![MediaPlan::none()];
    match media.mode {
        MediaMode::TransientRead { failures } => {
            for f in 1..failures {
                out.push(MediaPlan {
                    site: media.site,
                    mode: MediaMode::TransientRead { failures: f },
                });
            }
        }
        MediaMode::NoSpace { at_op } => {
            for op in 0..at_op {
                out.push(MediaPlan {
                    site: media.site,
                    mode: MediaMode::NoSpace { at_op: op },
                });
            }
        }
        MediaMode::None | MediaMode::Rot { .. } | MediaMode::PermanentRead => {}
    }
    out
}

/// Reduce a failing crash-recovery case to a (locally) minimal one,
/// shrinking both the script and the fault plan. The result is guaranteed
/// to still recover incorrectly.
pub fn reduce_recovery(case: &RecoveryCase, dialect: Dialect, bugs: &BugRegistry) -> RecoveryCase {
    assert!(
        recovery_still_failing(case, dialect, bugs),
        "cannot reduce a passing case"
    );
    let mut current = case.clone();
    // Statement removal shifts every later operation index, which can move
    // the crash out from under the divergence — and a simpler plan can
    // make more statements droppable (likewise for checkpoint positions).
    // So the phases alternate to a joint fixpoint rather than running once
    // each.
    loop {
        let mut changed = false;

        // Phase 1: drop script statements (greedy, to fixpoint). Dropping
        // statement `i` shifts the checkpoint schedule with it: positions
        // before `i` are untouched, later ones slide down one.
        loop {
            let mut progressed = false;
            let mut i = 0;
            while i < current.script.len() {
                let mut candidate = current.clone();
                candidate.script.remove(i);
                candidate.checkpoints =
                    remap_checkpoints(&current.checkpoints, i, candidate.script.len());
                if recovery_still_failing(&candidate, dialect, bugs) {
                    current = candidate;
                    progressed = true;
                } else {
                    i += 1;
                }
            }
            if !progressed {
                break;
            }
            changed = true;
        }

        // Phase 2: drop checkpoint positions (greedy, to fixpoint) — a
        // finding that only needs one of its checkpoints (or none) should
        // report the simpler schedule.
        loop {
            let mut progressed = false;
            let mut i = 0;
            while i < current.checkpoints.len() {
                let mut candidate = current.clone();
                candidate.checkpoints.remove(i);
                if recovery_still_failing(&candidate, dialect, bugs) {
                    current = candidate;
                    progressed = true;
                } else {
                    i += 1;
                }
            }
            if !progressed {
                break;
            }
            changed = true;
        }

        // Phase 3: simplify the fault plan (first — i.e. simplest —
        // candidate that still fails wins).
        for plan in simpler_plans(&current.plan) {
            let candidate = RecoveryCase {
                plan,
                ..current.clone()
            };
            if recovery_still_failing(&candidate, dialect, bugs) {
                current = candidate;
                changed = true;
                break;
            }
        }

        // Phase 4: simplify the media plan the same way.
        for media in simpler_media(&current.media) {
            let candidate = RecoveryCase {
                media,
                ..current.clone()
            };
            if recovery_still_failing(&candidate, dialect, bugs) {
                current = candidate;
                changed = true;
                break;
            }
        }

        if !changed {
            break;
        }
    }
    debug_assert!(recovery_still_failing(&current, dialect, bugs));
    current
}

/// Shift a checkpoint schedule across the removal of statement `removed`:
/// positions before it stay, later ones slide down one, and anything
/// falling off the script is dropped. A checkpoint *at* the removed
/// statement moves to the previous statement (or is dropped at the
/// script's head) — it keeps checkpointing "here-ish" rather than
/// silently rebinding to the next statement's effects.
fn remap_checkpoints(checkpoints: &[usize], removed: usize, new_len: usize) -> Vec<usize> {
    let mut out: Vec<usize> = checkpoints
        .iter()
        .filter_map(|&c| {
            if c < removed {
                Some(c)
            } else if c == 0 {
                None
            } else {
                Some(c - 1)
            }
        })
        .filter(|&c| c < new_len)
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Candidate replacements for a node: its children (hoisting) and simple
/// literals.
fn shrink_candidates(e: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    match e {
        Expr::Binary { left, right, .. } => {
            out.push((**left).clone());
            out.push((**right).clone());
        }
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::IsNull { expr, .. } => {
            out.push((**expr).clone())
        }
        Expr::Between { expr, .. } => out.push((**expr).clone()),
        Expr::InList { expr, .. } => out.push((**expr).clone()),
        Expr::Case {
            whens, else_expr, ..
        } => {
            for (_, t) in whens {
                out.push(t.clone());
            }
            if let Some(el) = else_expr {
                out.push((**el).clone());
            }
        }
        _ => {}
    }
    if !matches!(e, Expr::Literal(_)) {
        out.push(Expr::Literal(Value::Int(1)));
        out.push(Expr::Literal(Value::Int(0)));
    }
    out
}

/// Greedily shrink an expression while `check` keeps returning true for
/// the candidate.
fn shrink_expr(expr: &Expr, check: &mut impl FnMut(&Expr) -> bool) -> Expr {
    let mut current = expr.clone();
    loop {
        let mut progressed = false;
        for candidate in shrink_candidates(&current) {
            if candidate != current && check(&candidate) {
                current = candidate;
                progressed = true;
                break;
            }
        }
        if !progressed {
            break;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use coddb::parser::{parse_select, parse_statements};
    use coddb::BugId;

    /// A hand-built failing case with redundant setup for the Listing-1
    /// mutant.
    fn listing1_case() -> ReducibleCase {
        let setup = parse_statements(
            "CREATE TABLE t0 (c0);
             INSERT INTO t0 (c0) VALUES (1);
             CREATE TABLE unrelated (x INT);
             INSERT INTO unrelated VALUES (42);
             CREATE INDEX i0 ON t0 (c0 > 0);
             CREATE VIEW v0 (c0) AS SELECT AVG(t0.c0) FROM t0 GROUP BY 1 > t0.c0",
        )
        .unwrap();
        let original = parse_select(
            "SELECT COUNT(*) FROM t0 INDEXED BY i0 WHERE \
             (SELECT COUNT(*) FROM v0 WHERE v0.c0 BETWEEN 0 AND 0)",
        )
        .unwrap();
        let folded = parse_select("SELECT COUNT(*) FROM t0 INDEXED BY i0 WHERE 0").unwrap();
        ReducibleCase {
            setup,
            original,
            folded,
        }
    }

    #[test]
    fn reduction_removes_unrelated_statements() {
        let bugs = BugRegistry::only(BugId::SqliteAggSubqueryIndexedWhere);
        let case = listing1_case();
        assert!(still_failing(&case, Dialect::Sqlite, &bugs));
        let reduced = reduce(&case, Dialect::Sqlite, &bugs);
        assert!(still_failing(&reduced, Dialect::Sqlite, &bugs));
        assert!(
            reduced.setup.len() < case.setup.len(),
            "unrelated table should be dropped"
        );
        let rendered: Vec<String> = reduced.setup.iter().map(|s| s.to_string()).collect();
        assert!(
            rendered.iter().all(|s| !s.contains("unrelated")),
            "unrelated statements survived: {rendered:?}"
        );
    }

    #[test]
    fn reduction_keeps_failure_invariant() {
        let bugs = BugRegistry::only(BugId::SqliteAggSubqueryIndexedWhere);
        let reduced = reduce(&listing1_case(), Dialect::Sqlite, &bugs);
        // The essential statements survive.
        let rendered: Vec<String> = reduced.setup.iter().map(|s| s.to_string()).collect();
        assert!(rendered.iter().any(|s| s.contains("CREATE INDEX")));
        assert!(rendered.iter().any(|s| s.contains("CREATE VIEW")));
    }

    #[test]
    #[should_panic(expected = "cannot reduce a passing case")]
    fn reducing_a_passing_case_panics() {
        let case = listing1_case();
        reduce(&case, Dialect::Sqlite, &BugRegistry::none());
    }

    /// A crash-recovery case under the replay-uncommitted mutant: the
    /// corrupted final commit leaves an uncommitted INSERT in the image,
    /// which the mutant wrongly applies. Reduction must shrink both axes —
    /// the script to the one statement whose effect the mutant leaks, and
    /// the fault plan from a corrupt write deep in the log to a plain lost
    /// write at the earliest divergent operation — while the case keeps
    /// recovering incorrectly at its fault point.
    #[test]
    fn recovery_reduction_shrinks_script_and_fault_plan() {
        let bugs = BugRegistry::only_recovery(coddb::RecoveryBugId::ReplayUncommitted);
        let case = RecoveryCase {
            script: parse_statements(
                "CREATE TABLE t (a INT);
                 INSERT INTO t VALUES (1);
                 INSERT INTO t VALUES (2)",
            )
            .unwrap(),
            checkpoints: vec![],
            // Op 5 is the final INSERT's commit marker: it lands corrupted,
            // so the INSERT's effect record survives uncommitted.
            plan: FaultPlan {
                crash_op: 5,
                mode: FaultMode::Corrupt { byte_sel: 0 },
            },
            media: MediaPlan::none(),
        };
        assert!(recovery_still_failing(&case, Dialect::Sqlite, &bugs));
        let reduced = reduce_recovery(&case, Dialect::Sqlite, &bugs);
        assert!(recovery_still_failing(&reduced, Dialect::Sqlite, &bugs));
        assert_eq!(
            reduced.script.len(),
            1,
            "only one statement is needed to leak an uncommitted effect: {:?}",
            reduced
                .script
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
        );
        assert_eq!(
            reduced.plan,
            FaultPlan {
                crash_op: 1,
                mode: FaultMode::Lost,
            },
            "the corrupt write should downgrade to the earliest lost commit"
        );
        assert!(reduced.size() < case.size());
    }

    /// The drop-last-commit mutant diverges with no crash at all; the
    /// reducer keeps the (already minimal) no-crash plan and strips the
    /// script down to a single statement.
    #[test]
    fn recovery_reduction_drops_unrelated_statements() {
        let bugs = BugRegistry::only_recovery(coddb::RecoveryBugId::DropLastCommit);
        let case = RecoveryCase {
            script: parse_statements(
                "CREATE TABLE t (a INT);
                 INSERT INTO t VALUES (1);
                 CREATE TABLE unrelated (x INT);
                 INSERT INTO unrelated VALUES (9)",
            )
            .unwrap(),
            checkpoints: vec![],
            plan: FaultPlan::none(),
            media: MediaPlan::none(),
        };
        assert!(recovery_still_failing(&case, Dialect::Sqlite, &bugs));
        let reduced = reduce_recovery(&case, Dialect::Sqlite, &bugs);
        assert!(recovery_still_failing(&reduced, Dialect::Sqlite, &bugs));
        assert_eq!(
            reduced.script.len(),
            1,
            "one committed statement suffices: {:?}",
            reduced
                .script
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
        );
        assert!(!reduced.plan.crashes(), "the no-crash plan is minimal");
    }

    #[test]
    #[should_panic(expected = "cannot reduce a passing case")]
    fn reducing_a_passing_recovery_case_panics() {
        let case = RecoveryCase {
            script: parse_statements("CREATE TABLE t (a INT)").unwrap(),
            checkpoints: vec![],
            plan: FaultPlan::none(),
            media: MediaPlan::none(),
        };
        reduce_recovery(&case, Dialect::Sqlite, &BugRegistry::none());
    }

    /// A checkpoint-path mutant case reduces along the checkpoint axis
    /// too: the stale-snapshot mutant needs two checkpoints to diverge, so
    /// the reducer must keep both while still shrinking the script.
    #[test]
    fn recovery_reduction_shrinks_the_checkpoint_axis() {
        let bugs = BugRegistry::only_recovery(coddb::RecoveryBugId::StaleSnapshotPreferred);
        let case = RecoveryCase {
            script: parse_statements(
                "CREATE TABLE t (a INT);
                 INSERT INTO t VALUES (1);
                 CREATE TABLE unrelated (x INT);
                 INSERT INTO t VALUES (2);
                 INSERT INTO t VALUES (3)",
            )
            .unwrap(),
            checkpoints: vec![0, 1, 3],
            plan: FaultPlan::none(),
            media: MediaPlan::none(),
        };
        assert!(recovery_still_failing(&case, Dialect::Sqlite, &bugs));
        let reduced = reduce_recovery(&case, Dialect::Sqlite, &bugs);
        assert!(recovery_still_failing(&reduced, Dialect::Sqlite, &bugs));
        assert!(reduced.size() < case.size());
        assert!(
            reduced.script.len() < case.script.len(),
            "script should shrink: {:?}",
            reduced
                .script
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
        );
        assert_eq!(
            reduced.checkpoints.len(),
            2,
            "the stale-snapshot mutant needs exactly two checkpoints: {:?}",
            reduced.checkpoints
        );
        // The drop-one-checkpoint candidates must have been tried and
        // rejected — one checkpoint alone cannot make the mutant pick a
        // stale base.
        for i in 0..reduced.checkpoints.len() {
            let mut weaker = reduced.clone();
            weaker.checkpoints.remove(i);
            assert!(
                !recovery_still_failing(&weaker, Dialect::Sqlite, &bugs),
                "reduction left a droppable checkpoint at {i}"
            );
        }
    }

    /// A media-axis case reduces along its own dimension: the retry-cap
    /// mutant only needs a transient fault slower than the cap, so the
    /// failure count shrinks to `READ_RETRY_CAP + 1` and the script — the
    /// fault is orthogonal to it — drops away entirely.
    #[test]
    fn recovery_reduction_shrinks_the_media_axis() {
        use coddb::error::StorageSite;
        use coddb::wal::READ_RETRY_CAP;
        let bugs = BugRegistry::only_media(coddb::bugs::MediaBugId::RetryCapIgnored);
        let case = RecoveryCase {
            script: parse_statements(
                "CREATE TABLE t (a INT);
                 INSERT INTO t VALUES (1);
                 CREATE TABLE unrelated (x INT)",
            )
            .unwrap(),
            checkpoints: vec![],
            plan: FaultPlan::none(),
            media: MediaPlan {
                site: StorageSite::Log,
                mode: MediaMode::TransientRead { failures: 9 },
            },
        };
        assert!(recovery_still_failing(&case, Dialect::Sqlite, &bugs));
        let reduced = reduce_recovery(&case, Dialect::Sqlite, &bugs);
        assert!(recovery_still_failing(&reduced, Dialect::Sqlite, &bugs));
        assert_eq!(
            reduced.media.mode,
            MediaMode::TransientRead {
                failures: READ_RETRY_CAP + 1
            },
            "the slowest still-failing transient fault is one past the cap"
        );
        assert!(
            reduced.script.is_empty(),
            "the read-path fault needs no script at all: {:?}",
            reduced
                .script
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
        );
        assert!(reduced.size() < case.size());
    }

    #[test]
    fn shrink_expr_hoists_children() {
        // Shrinks (1 AND (x > 0)) all the way down to the bare column when
        // the check only demands a column reference to stay present.
        let e = Expr::and(
            Expr::lit(1i64),
            Expr::bin(
                coddb::ast::BinaryOp::Gt,
                Expr::bare_col("x"),
                Expr::lit(0i64),
            ),
        );
        let shrunk = shrink_expr(&e, &mut |c| {
            let mut has_col = false;
            coddb::ast::visit::walk_expr_shallow(c, &mut |n| {
                if matches!(n, Expr::Column(_)) {
                    has_col = true;
                }
            });
            has_col
        });
        assert_eq!(shrunk.to_string(), "x");
    }
}
