//! DQE baseline — Differential Query Execution (Song et al., ICSE 2023).
//!
//! The same predicate must select the same rows in `SELECT`, `UPDATE` and
//! `DELETE`. Following the published tool, DQE maintains its own table
//! with two extra columns — a unique row identifier and a modification
//! marker ("a test requires not only the three statements ... but also
//! additional statements for two extra columns", §4.3) — and uses
//! single-table, subquery-free predicates (no JOIN support, which the
//! paper cites for DQE's lower branch coverage).

use coddb::ast::{
    ColumnDef, Expr, InsertSource, Select, SelectCore, SelectItem, Statement, TableExpr,
};
use coddb::value::{DataType, Value};
use rand::RngExt;
use sqlgen::expr::ExprGen;
use sqlgen::state::{random_column_type, random_value};
use sqlgen::{ColumnInfo, GenConfig, SchemaInfo, TableInfo};

use crate::{error_outcome, BugReport, Oracle, ReportKind, Session, TestOutcome};

const ORACLE_NAME: &str = "dqe";
const TABLE: &str = "dqe0";

/// The DQE oracle.
pub struct Dqe {
    config: GenConfig,
    /// The data columns of the private table, rebuilt per database.
    table: Option<TableInfo>,
}

impl Default for Dqe {
    fn default() -> Self {
        Dqe {
            config: GenConfig {
                allow_joins: false,
                ..GenConfig::expressions_only()
            },
            table: None,
        }
    }
}

impl Dqe {
    /// (Re)create the private table with id / data / modified columns.
    /// The published DQE tool re-stages its tables and marker columns per
    /// test — the reason the paper measures its QPT at 17.0.
    fn ensure_table(
        &mut self,
        s: &mut Session,
        rng: &mut dyn rand::Rng,
    ) -> Result<TableInfo, TestOutcome> {
        let dialect = s.dialect();
        let n_cols = rng.random_range(1..=3);
        let mut defs = vec![ColumnDef {
            name: "id".into(),
            ty: DataType::Int,
            not_null: true,
        }];
        let mut data_cols = Vec::new();
        for i in 0..n_cols {
            let mut ty = random_column_type(rng, dialect);
            if ty == DataType::Any {
                ty = DataType::Int;
            }
            defs.push(ColumnDef {
                name: format!("c{i}"),
                ty,
                not_null: false,
            });
            data_cols.push((format!("c{i}"), ty));
        }
        defs.push(ColumnDef {
            name: "modified".into(),
            ty: DataType::Int,
            not_null: false,
        });

        let _ = s.execute(&Statement::DropTable {
            name: TABLE.into(),
            if_exists: true,
        });
        if let Err(e) = s.execute(&Statement::CreateTable {
            name: TABLE.into(),
            columns: defs,
            if_not_exists: false,
        }) {
            return Err(error_outcome(
                ORACLE_NAME,
                &e,
                vec![("create".into(), TABLE.into())],
            ));
        }
        // One INSERT per row, mirroring the published tool's row-at-a-time
        // staging (part of why DQE executes the most statements per test).
        let n_rows = rng.random_range(1..=8);
        for id in 0..n_rows {
            let mut row = vec![Expr::lit(id as i64)];
            for (_, ty) in &data_cols {
                row.push(Expr::Literal(random_value(rng, *ty)));
            }
            row.push(Expr::lit(0i64));
            if let Err(e) = s.execute(&Statement::Insert {
                table: TABLE.into(),
                columns: Vec::new(),
                source: InsertSource::Values(vec![row]),
            }) {
                return Err(error_outcome(
                    ORACLE_NAME,
                    &e,
                    vec![("insert".into(), TABLE.into())],
                ));
            }
        }
        let info = TableInfo {
            name: TABLE.into(),
            columns: data_cols,
            is_view: false,
            row_count: n_rows,
        };
        self.table = Some(info.clone());
        Ok(info)
    }

    fn select_ids(&self, s: &mut Session, where_clause: Option<Expr>) -> coddb::Result<Vec<i64>> {
        let q = Select::from_core(SelectCore {
            items: vec![SelectItem::Expr {
                expr: Expr::col(TABLE, "id"),
                alias: None,
            }],
            from: Some(TableExpr::named(TABLE)),
            where_clause,
            ..SelectCore::default()
        });
        let rel = s.query(&q)?;
        let mut ids: Vec<i64> = rel.rows.iter().filter_map(|r| r[0].as_i64()).collect();
        ids.sort_unstable();
        Ok(ids)
    }
}

impl Oracle for Dqe {
    fn name(&self) -> &'static str {
        ORACLE_NAME
    }

    fn run_one(
        &mut self,
        s: &mut Session,
        _schema: &SchemaInfo,
        rng: &mut dyn rand::Rng,
    ) -> TestOutcome {
        let table = match self.ensure_table(s, rng) {
            Ok(t) => t,
            Err(outcome) => return outcome,
        };
        let dialect = s.dialect();
        let scope: Vec<ColumnInfo> = table.columns_as(TABLE);
        let empty_schema = SchemaInfo::default();
        let mut gen = ExprGen::new(dialect, &self.config, &empty_schema, &scope);
        let p = gen.gen_predicate(rng, self.config.max_depth.max(1));

        let select_sql = format!("SELECT id FROM {TABLE} WHERE {p}");
        let update = Statement::Update {
            table: TABLE.into(),
            sets: vec![("modified".into(), Expr::lit(1i64))],
            where_clause: Some(p.clone()),
        };
        let delete = Statement::Delete {
            table: TABLE.into(),
            where_clause: Some(p.clone()),
        };
        let case = vec![
            ("select".into(), select_sql),
            ("update".into(), update.to_string()),
            ("delete".into(), delete.to_string()),
        ];

        // SELECT.
        let ids_select = match self.select_ids(s, Some(p.clone())) {
            Ok(ids) => ids,
            Err(e) => return error_outcome(ORACLE_NAME, &e, case),
        };

        // UPDATE on a snapshot: the marked rows are the selected rows.
        let snapshot = s.db.snapshot();
        let upd = s.execute(&update);
        let ids_update = match upd {
            Ok(_) => {
                let marked = self.select_ids(
                    s,
                    Some(Expr::eq(Expr::col(TABLE, "modified"), Expr::lit(1i64))),
                );
                s.db.restore(snapshot.clone());
                match marked {
                    Ok(ids) => ids,
                    Err(e) => return error_outcome(ORACLE_NAME, &e, case),
                }
            }
            Err(e) => {
                s.db.restore(snapshot);
                // The paper's §4.2 MySQL case: the predicate works in
                // SELECT but raises a semantic error in UPDATE/DELETE —
                // DQE cannot test it.
                return error_outcome(ORACLE_NAME, &e, case);
            }
        };

        // DELETE on a snapshot: the deleted rows are the selected rows.
        let all_ids = match self.select_ids(s, None) {
            Ok(ids) => ids,
            Err(e) => return error_outcome(ORACLE_NAME, &e, case),
        };
        let del = s.execute(&delete);
        let ids_delete = match del {
            Ok(_) => {
                let remaining = self.select_ids(s, None);
                s.db.restore(snapshot);
                match remaining {
                    Ok(rem) => all_ids
                        .iter()
                        .copied()
                        .filter(|id| !rem.contains(id))
                        .collect::<Vec<_>>(),
                    Err(e) => return error_outcome(ORACLE_NAME, &e, case),
                }
            }
            Err(e) => {
                s.db.restore(snapshot);
                return error_outcome(ORACLE_NAME, &e, case);
            }
        };

        if ids_select == ids_update && ids_select == ids_delete {
            TestOutcome::Pass
        } else {
            TestOutcome::Bug(BugReport {
                oracle: ORACLE_NAME,
                kind: ReportKind::LogicDiscrepancy,
                queries: case,
                detail: format!(
                    "SELECT matched {ids_select:?}, UPDATE matched {ids_update:?}, \
                     DELETE matched {ids_delete:?}"
                ),
            })
        }
    }
}

// Keep Value in scope for doc examples.
#[allow(unused_imports)]
use Value as _ValueDoc;

#[cfg(test)]
mod tests {
    use super::*;
    use coddb::{Database, Dialect};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn no_false_alarms_on_clean_engines() {
        for dialect in Dialect::ALL {
            let mut db = Database::new(dialect);
            let mut oracle = Dqe::default();
            let schema = SchemaInfo::default();
            let mut session = Session::new(&mut db);
            for seed in 0..250u64 {
                let mut rng = StdRng::seed_from_u64(13_000 + seed);
                if let TestOutcome::Bug(r) = oracle.run_one(&mut session, &schema, &mut rng) {
                    panic!("DQE false alarm on clean {dialect}:\n{}", r.to_display());
                }
            }
        }
    }

    #[test]
    fn detects_select_only_bug() {
        // CockroachOrShortCircuitFalse fires only in SELECT WHERE filters;
        // UPDATE/DELETE behave correctly — DQE's sweet spot.
        let mut db = Database::with_bugs(
            Dialect::Cockroach,
            coddb::bugs::BugRegistry::only(coddb::BugId::CockroachOrShortCircuitFalse),
        );
        let mut oracle = Dqe::default();
        let schema = SchemaInfo::default();
        let mut found = false;
        let mut session = Session::new(&mut db);
        for seed in 0..800u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            if oracle.run_one(&mut session, &schema, &mut rng).is_bug() {
                found = true;
                break;
            }
        }
        assert!(
            found,
            "DQE should detect the SELECT-only OR short-circuit bug"
        );
    }

    #[test]
    fn misses_statement_consistent_bug() {
        // TidbInValueListWhere fires identically in every statement's
        // WHERE — DQE structurally cannot see it (Listing 10 analysis).
        let mut db = Database::with_bugs(
            Dialect::Tidb,
            coddb::bugs::BugRegistry::only(coddb::BugId::TidbInValueListWhere),
        );
        let mut oracle = Dqe::default();
        let schema = SchemaInfo::default();
        let mut session = Session::new(&mut db);
        for seed in 0..400u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let outcome = oracle.run_one(&mut session, &schema, &mut rng);
            assert!(
                !outcome.is_bug(),
                "DQE unexpectedly detected a consistent WHERE bug"
            );
        }
    }
}
