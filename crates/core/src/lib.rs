//! # CODDTest — constant-optimization-driven database testing
//!
//! The paper's contribution, reproduced as a Rust library:
//!
//! * [`codd`] — the CODDTest oracle (Algorithm 1): constant folding of a
//!   randomly generated expression φ through an auxiliary query, constant
//!   propagation back into the original query (literal, value-list, or
//!   per-row CASE mapping), plus the §3.4 relation-folding extension.
//! * [`norec`], [`tlp`], [`dqe`], [`eet`] — the state-of-the-art baseline
//!   oracles the paper compares against.
//! * [`recover`] — the crash-recovery differential oracle over coddb's
//!   durable storage layer: seeded crash injection, recovery, and a
//!   byte-exact committed-prefix comparison.
//! * [`verify`] — the static plan verifier as an oracle: flags any
//!   statically-illegal plan ([`coddb::validate`]) as a finding without
//!   executing a row.
//! * [`runner`] — deterministic test campaigns with the Table 3 metrics
//!   (tests, successful/unsuccessful queries, QPT, unique query plans,
//!   branch coverage) and bug attribution for the Table 1/2 harnesses.
//! * [`reduce`] — a delta-debugging reducer for bug-inducing test cases
//!   (the paper reduces every case before reporting, §4.1).
//!
//! Every oracle implements [`Oracle`] and consumes a [`Session`], which
//! tallies successful/unsuccessful queries and collects plan fingerprints.

pub mod analyze;
pub mod codd;
pub mod dqe;
pub mod eet;
pub mod norec;
pub mod recover;
pub mod reduce;
pub mod runner;
pub mod tlp;
pub mod verify;

use std::collections::BTreeSet;

use coddb::ast::{Select, Statement};
use coddb::value::{Relation, Value};
use coddb::{Database, Error, Severity};
use sqlgen::SchemaInfo;

/// The outcome of one metamorphic test.
#[derive(Debug, Clone)]
pub enum TestOutcome {
    /// The metamorphic relation held.
    Pass,
    /// A discrepancy or engine bug signal was observed.
    Bug(BugReport),
    /// The test could not be completed (expected error, empty input, ...).
    Skipped(String),
}

impl TestOutcome {
    pub fn is_bug(&self) -> bool {
        matches!(self, TestOutcome::Bug(_))
    }
}

/// What kind of misbehaviour a report describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportKind {
    /// Original and folded/partitioned queries disagreed.
    LogicDiscrepancy,
    /// The engine returned an internal error.
    InternalError,
    /// The engine "crashed" (CoddDB surfaces this as an error).
    Crash,
    /// The engine exhausted its execution fuel.
    Hang,
}

impl ReportKind {
    pub fn from_error(e: &Error) -> Option<ReportKind> {
        match e {
            Error::Internal(_) => Some(ReportKind::InternalError),
            Error::Crash(_) => Some(ReportKind::Crash),
            Error::Hang => Some(ReportKind::Hang),
            _ => None,
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            ReportKind::LogicDiscrepancy => "logic",
            ReportKind::InternalError => "internal error",
            ReportKind::Crash => "crash",
            ReportKind::Hang => "hang",
        }
    }
}

/// A bug-inducing test case, with everything needed to inspect it.
#[derive(Debug, Clone)]
pub struct BugReport {
    pub oracle: &'static str,
    pub kind: ReportKind,
    /// Labelled queries, e.g. `("original", ...)`, `("auxiliary", ...)`,
    /// `("folded", ...)`.
    pub queries: Vec<(String, String)>,
    /// Human-readable explanation of the discrepancy.
    pub detail: String,
}

impl BugReport {
    pub fn to_display(&self) -> String {
        let mut out = format!("[{}] {} bug\n", self.oracle, self.kind.label());
        for (label, sql) in &self.queries {
            out.push_str(&format!("  {label}: {sql}\n"));
        }
        out.push_str(&format!("  detail: {}", self.detail));
        out
    }
}

/// Wraps a [`Database`] and tallies the Table 3 accounting: successful
/// queries, unsuccessful (expected-error) queries, and the fingerprints of
/// executed query plans.
pub struct Session<'a> {
    pub db: &'a mut Database,
    pub ok_queries: u64,
    pub err_queries: u64,
    pub plans: BTreeSet<u64>,
}

impl<'a> Session<'a> {
    pub fn new(db: &'a mut Database) -> Self {
        Session {
            db,
            ok_queries: 0,
            err_queries: 0,
            plans: BTreeSet::new(),
        }
    }

    /// Total queries this session has tallied (successful + expected-error).
    /// The campaign runner samples this around each test to attribute query
    /// counts to the test's outcome (the Table 3 QPT accounting).
    pub fn queries_issued(&self) -> u64 {
        self.ok_queries + self.err_queries
    }

    fn track<T>(&mut self, r: &coddb::Result<T>) {
        match r {
            Ok(_) => {
                self.ok_queries += 1;
                if let Some(fp) = self.db.last_plan_fingerprint() {
                    self.plans.insert(fp);
                }
            }
            Err(e) if e.severity() == Severity::Expected => self.err_queries += 1,
            Err(_) => {}
        }
    }

    /// Run a SELECT with the optimizer enabled.
    pub fn query(&mut self, q: &Select) -> coddb::Result<Relation> {
        let r = self.db.query(q);
        self.track(&r);
        r
    }

    /// Run a SELECT with the optimizer disabled (NoREC's reference side).
    pub fn query_unoptimized(&mut self, q: &Select) -> coddb::Result<Relation> {
        let r = self.db.query_unoptimized(q);
        self.track(&r);
        r
    }

    /// Execute any statement.
    pub fn execute(&mut self, stmt: &Statement) -> coddb::Result<coddb::ExecOutcome> {
        let r = self.db.execute(stmt);
        self.track(&r);
        r
    }

    pub fn dialect(&self) -> coddb::Dialect {
        self.db.dialect()
    }
}

/// Convert an engine error into a test outcome: bug-signal errors become
/// reports, expected errors skip the test.
pub fn error_outcome(
    oracle: &'static str,
    e: &Error,
    queries: Vec<(String, String)>,
) -> TestOutcome {
    match ReportKind::from_error(e) {
        Some(kind) => TestOutcome::Bug(BugReport {
            oracle,
            kind,
            queries,
            detail: e.to_string(),
        }),
        None => TestOutcome::Skipped(format!("expected error: {e}")),
    }
}

/// Interpret a value as a SQL truth value the way the dialect's clients
/// do (used when an oracle evaluates a predicate in a projection).
pub fn value_is_true(v: &Value) -> bool {
    match v {
        Value::Bool(b) => *b,
        Value::Int(i) => *i != 0,
        Value::Real(r) => *r != 0.0,
        Value::Text(s) => Value::Text(s.clone()).coerce_f64() != 0.0,
        Value::Null => false,
    }
}

/// A test oracle: generates one metamorphic test against the session's
/// database (whose state is described by `schema`) per call.
pub trait Oracle {
    fn name(&self) -> &'static str;

    /// Run one test. Implementations must be deterministic given `rng`.
    fn run_one(
        &mut self,
        session: &mut Session,
        schema: &SchemaInfo,
        rng: &mut dyn rand::Rng,
    ) -> TestOutcome;
}

/// Construct a fresh oracle by name (used by the campaign re-runner for
/// bug attribution).
pub fn make_oracle(name: &str) -> Option<Box<dyn Oracle>> {
    match name {
        "codd" => Some(Box::new(codd::CoddTest::default())),
        "codd-expression" => Some(Box::new(codd::CoddTest::expressions_only())),
        "codd-subquery" => Some(Box::new(codd::CoddTest::subqueries_only())),
        "norec" => Some(Box::new(norec::NoRec::default())),
        "tlp" => Some(Box::new(tlp::Tlp::default())),
        "dqe" => Some(Box::new(dqe::Dqe::default())),
        "eet" => Some(Box::new(eet::Eet::default())),
        "recover" => Some(Box::new(recover::Recover)),
        "panic-probe" => Some(Box::new(recover::PanicProbe)),
        "verify" => Some(Box::new(verify::Verify::default())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_kind_from_error() {
        assert_eq!(
            ReportKind::from_error(&Error::Internal("x".into())),
            Some(ReportKind::InternalError)
        );
        assert_eq!(
            ReportKind::from_error(&Error::Crash("x".into())),
            Some(ReportKind::Crash)
        );
        assert_eq!(ReportKind::from_error(&Error::Hang), Some(ReportKind::Hang));
        assert_eq!(ReportKind::from_error(&Error::Eval("x".into())), None);
    }

    #[test]
    fn session_tallies_queries() {
        let mut db = Database::new(coddb::Dialect::Sqlite);
        db.execute_sql("CREATE TABLE t (v INT); INSERT INTO t VALUES (1)")
            .unwrap();
        let mut s = Session::new(&mut db);
        let q = coddb::parser::parse_select("SELECT * FROM t").unwrap();
        s.query(&q).unwrap();
        assert_eq!(s.ok_queries, 1);
        assert_eq!(s.plans.len(), 1);
        let bad = coddb::parser::parse_select("SELECT * FROM missing").unwrap();
        assert!(s.query(&bad).is_err());
        assert_eq!(s.err_queries, 1);
    }

    #[test]
    fn value_truthiness() {
        assert!(value_is_true(&Value::Int(5)));
        assert!(!value_is_true(&Value::Int(0)));
        assert!(value_is_true(&Value::Bool(true)));
        assert!(!value_is_true(&Value::Null));
        assert!(value_is_true(&Value::Text("1".into())));
        assert!(!value_is_true(&Value::Text("x".into())));
    }

    #[test]
    fn oracle_factory_knows_all_names() {
        for name in [
            "codd",
            "codd-expression",
            "codd-subquery",
            "norec",
            "tlp",
            "dqe",
            "eet",
            "recover",
            "panic-probe",
            "verify",
        ] {
            assert!(make_oracle(name).is_some(), "{name}");
        }
        assert!(make_oracle("nope").is_none());
    }
}
