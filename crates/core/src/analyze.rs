//! Self-hosted registry lints: source-level drift detection.
//!
//! The repo maintains several registries whose entries are only useful
//! while the rest of the tree keeps its side of the bargain — a coverage
//! point that nothing emits, a bug mutant no hook injects or no test
//! detects, a benchmark field no gate checks is silent rot. The
//! `coddtest-analyze` binary (and [`analyze_repo`], which backs it) lints
//! the sources themselves:
//!
//! * **coverage-point-unused** — every const registered in the
//!   `coverage_points!` block of `crates/coddb/src/coverage.rs` must be
//!   emitted (`pt::NAME`) somewhere in the engine outside the registry
//!   file itself.
//! * **mutant-unhooked** — every variant in the four bug registries'
//!   `ALL` arrays (`BugId`, `RecoveryBugId`, `IndexBugId`, `MediaBugId`)
//!   must be referenced by engine code outside `bugs.rs` (the injection
//!   hook).
//! * **mutant-untested** — every variant must be referenced by a
//!   detection test: named in a test file, or swept via the registry's
//!   `::ALL` array from a test file.
//! * **bench-field-ungated** — every `*_speedup` / `*_overhead` shape in
//!   `BENCH_engine.json` must be gated in `scripts/bench_check`.
//!
//! All parsing is plain text scanning with token-boundary checks — no
//! external dependencies, deterministic, and fast enough for CI.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One registry-drift finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Stable lint identifier (e.g. `"mutant-unhooked"`).
    pub lint: &'static str,
    /// The drifted entry (const, variant, or field name).
    pub subject: String,
    /// Human-readable specifics.
    pub detail: String,
}

/// The result of one full lint run.
#[derive(Debug, Clone, Default)]
pub struct AnalyzeReport {
    pub findings: Vec<LintFinding>,
    /// How many entries each lint examined (lint name → count), so a
    /// clean report is distinguishable from a report that checked
    /// nothing.
    pub checked: BTreeMap<&'static str, usize>,
}

impl AnalyzeReport {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Render as human-readable text (one line per finding plus a
    /// summary line).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!("{}: {} — {}\n", f.lint, f.subject, f.detail));
        }
        let total: usize = self.checked.values().sum();
        out.push_str(&format!(
            "{} finding(s) across {} checked entries ({})\n",
            self.findings.len(),
            total,
            self.checked
                .iter()
                .map(|(k, v)| format!("{k}: {v}"))
                .collect::<Vec<_>>()
                .join(", "),
        ));
        out
    }

    /// Render as machine-readable JSON (hand-rolled; the workspace has no
    /// serialization dependency).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let findings = self
            .findings
            .iter()
            .map(|f| {
                format!(
                    "{{\"lint\":\"{}\",\"subject\":\"{}\",\"detail\":\"{}\"}}",
                    esc(f.lint),
                    esc(&f.subject),
                    esc(&f.detail)
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let checked = self
            .checked
            .iter()
            .map(|(k, v)| format!("\"{}\":{v}", esc(k)))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"clean\":{},\"findings\":[{findings}],\"checked\":{{{checked}}}}}",
            self.is_clean()
        )
    }
}

/// Does `needle` occur in `hay` as a whole token (the character after
/// each occurrence is not part of an identifier)? Guards against prefix
/// collisions like `pt::EXEC_SORT` matching `pt::EXEC_SORT_POSITIONAL`.
fn token_match(hay: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let end = from + pos + needle.len();
        let boundary = hay[end..]
            .chars()
            .next()
            .is_none_or(|c| !(c.is_ascii_alphanumeric() || c == '_'));
        if boundary {
            return true;
        }
        from = end;
    }
    false
}

/// Recursively collect `.rs` files under `dir` (sorted for determinism).
fn rs_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    if !dir.exists() {
        return Ok(out);
    }
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&d)?
            .map(|e| e.map(|e| e.path()))
            .collect::<io::Result<_>>()?;
        entries.sort();
        for p in entries {
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn read_files(paths: &[PathBuf]) -> io::Result<Vec<(PathBuf, String)>> {
    paths
        .iter()
        .map(|p| Ok((p.clone(), fs::read_to_string(p)?)))
        .collect()
}

/// Parse the `coverage_points! { NAME = "label"; ... }` block.
fn parse_coverage_points(src: &str) -> Vec<String> {
    let Some(start) = src.find("coverage_points! {") else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for line in src[start..].lines().skip(1) {
        let line = line.trim();
        if line == "}" {
            break;
        }
        if let Some((name, rest)) = line.split_once('=') {
            let name = name.trim();
            if rest.trim_start().starts_with('"')
                && !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
            {
                out.push(name.to_string());
            }
        }
    }
    out
}

/// Parse one registry's `pub const ALL: [<Enum>; N] = [ ... ];` array,
/// returning the variant names.
fn parse_all_array(src: &str, enum_name: &str) -> Vec<String> {
    let marker = format!("pub const ALL: [{enum_name};");
    let Some(start) = src.find(&marker) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let prefix = format!("{enum_name}::");
    for line in src[start..].lines().skip(1) {
        let line = line.trim();
        if line.starts_with("];") {
            break;
        }
        if let Some(rest) = line.strip_prefix(&prefix) {
            out.push(rest.trim_end_matches(',').trim().to_string());
        }
    }
    out
}

/// Run every lint against the repository at `root`.
pub fn analyze_repo(root: &Path) -> io::Result<AnalyzeReport> {
    let mut report = AnalyzeReport::default();
    let engine_src = read_files(&rs_files(&root.join("crates/coddb/src"))?)?;

    // Test corpus: integration test files of every crate, plus source
    // files with in-file test modules (unit tests count as detection
    // tests — the validator differential suite lives in both forms).
    let mut test_corpus: Vec<(PathBuf, String)> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.exists() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .map(|e| e.map(|e| e.path()))
            .collect::<io::Result<_>>()?;
        crate_dirs.sort();
        for c in crate_dirs {
            test_corpus.extend(read_files(&rs_files(&c.join("tests"))?)?);
            for (p, s) in read_files(&rs_files(&c.join("src"))?)? {
                if s.contains("#[cfg(test)]") {
                    test_corpus.push((p, s));
                }
            }
        }
    }

    // --- coverage-point-unused -------------------------------------------
    let coverage_src = engine_src
        .iter()
        .find(|(p, _)| p.ends_with("coverage.rs"))
        .map(|(_, s)| s.as_str())
        .unwrap_or("");
    let points = parse_coverage_points(coverage_src);
    report.checked.insert("coverage-point-unused", points.len());
    for name in &points {
        let emitted = engine_src
            .iter()
            .any(|(p, s)| !p.ends_with("coverage.rs") && token_match(s, &format!("pt::{name}")));
        if !emitted {
            report.findings.push(LintFinding {
                lint: "coverage-point-unused",
                subject: name.clone(),
                detail: "registered in coverage_points! but never emitted by the engine".into(),
            });
        }
    }

    // --- mutant-unhooked / mutant-untested -------------------------------
    let bugs_src = engine_src
        .iter()
        .find(|(p, _)| p.ends_with("bugs.rs"))
        .map(|(_, s)| s.as_str())
        .unwrap_or("");
    let mut hook_checked = 0;
    for enum_name in ["BugId", "RecoveryBugId", "IndexBugId", "MediaBugId"] {
        let variants = parse_all_array(bugs_src, enum_name);
        hook_checked += variants.len();
        let all_swept = test_corpus
            .iter()
            .any(|(_, s)| token_match(s, &format!("{enum_name}::ALL")));
        for v in &variants {
            let qualified = format!("{enum_name}::{v}");
            let hooked = engine_src
                .iter()
                .any(|(p, s)| !p.ends_with("bugs.rs") && token_match(s, &qualified));
            if !hooked {
                report.findings.push(LintFinding {
                    lint: "mutant-unhooked",
                    subject: qualified.clone(),
                    detail: "listed in the registry's ALL array but never injected by engine code"
                        .into(),
                });
            }
            let tested = all_swept || test_corpus.iter().any(|(_, s)| token_match(s, &qualified));
            if !tested {
                report.findings.push(LintFinding {
                    lint: "mutant-untested",
                    subject: qualified,
                    detail: "no detection test names this mutant or sweeps its registry's ALL"
                        .into(),
                });
            }
        }
    }
    report.checked.insert("mutant-unhooked", hook_checked);
    report.checked.insert("mutant-untested", hook_checked);

    // --- bench-field-ungated ---------------------------------------------
    let bench_json = fs::read_to_string(root.join("BENCH_engine.json")).unwrap_or_default();
    let bench_check = fs::read_to_string(root.join("scripts/bench_check")).unwrap_or_default();
    // A set: the same shape can recur across nested sections (one gate
    // covers every occurrence of the field name).
    let mut gated_fields = std::collections::BTreeSet::new();
    for line in bench_json.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((key, _)) = rest.split_once('"') else {
            continue;
        };
        if key.ends_with("_speedup") || key.ends_with("_overhead") {
            gated_fields.insert(key.to_string());
        }
    }
    report
        .checked
        .insert("bench-field-ungated", gated_fields.len());
    for field in &gated_fields {
        if !token_match(&bench_check, field) {
            report.findings.push(LintFinding {
                lint: "bench-field-ungated",
                subject: field.clone(),
                detail: "benchmark shape in BENCH_engine.json has no gate in scripts/bench_check"
                    .into(),
            });
        }
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
    }

    /// The lint suite's acceptance gate: the repository at HEAD is
    /// drift-free. Any registry drift a future change introduces fails
    /// here (and in CI via scripts/analyze_check) instead of rotting.
    #[test]
    fn repo_at_head_is_clean() {
        let report = analyze_repo(&repo_root()).unwrap();
        assert!(report.is_clean(), "{}", report.to_text());
        // And the run actually examined every registry.
        assert!(report.checked["coverage-point-unused"] > 100);
        assert_eq!(report.checked["mutant-unhooked"], 45 + 10 + 5 + 5);
        assert!(report.checked["bench-field-ungated"] >= 9);
    }

    /// A deliberately-broken fixture repo: an unemitted coverage point,
    /// an unhooked + untested mutant, and an ungated bench field must
    /// each produce their finding.
    #[test]
    fn broken_fixture_fails_every_lint() {
        let dir = std::env::temp_dir().join(format!("coddtest-analyze-{}", std::process::id()));
        let src = dir.join("crates/coddb/src");
        fs::create_dir_all(&src).unwrap();
        fs::create_dir_all(dir.join("scripts")).unwrap();
        fs::write(
            src.join("coverage.rs"),
            "coverage_points! {\n    USED_POINT = \"a\";\n    GHOST_POINT = \"b\";\n}\n",
        )
        .unwrap();
        fs::write(src.join("exec.rs"), "fn f() { hit(pt::USED_POINT); }\n").unwrap();
        fs::write(
            src.join("bugs.rs"),
            "pub const ALL: [BugId; 2] = [\n    BugId::Hooked,\n    BugId::Ghost,\n];\n",
        )
        .unwrap();
        fs::write(
            src.join("hooks.rs"),
            "fn g(b: &B) { b.active(BugId::Hooked); }\n",
        )
        .unwrap();
        let tests = dir.join("crates/coddb/tests");
        fs::create_dir_all(&tests).unwrap();
        fs::write(
            tests.join("detect.rs"),
            "fn t() { probe(BugId::Hooked); }\n",
        )
        .unwrap();
        fs::write(
            dir.join("BENCH_engine.json"),
            "{\n\"gated_speedup\": 2.0,\n\"ghost_speedup\": 2.0\n}\n",
        )
        .unwrap();
        fs::write(dir.join("scripts/bench_check"), "check gated_speedup\n").unwrap();

        let report = analyze_repo(&dir).unwrap();
        fs::remove_dir_all(&dir).unwrap();

        let lints: Vec<(&str, &str)> = report
            .findings
            .iter()
            .map(|f| (f.lint, f.subject.as_str()))
            .collect();
        assert!(
            lints.contains(&("coverage-point-unused", "GHOST_POINT")),
            "{lints:?}"
        );
        assert!(
            lints.contains(&("mutant-unhooked", "BugId::Ghost")),
            "{lints:?}"
        );
        assert!(
            lints.contains(&("mutant-untested", "BugId::Ghost")),
            "{lints:?}"
        );
        assert!(
            lints.contains(&("bench-field-ungated", "ghost_speedup")),
            "{lints:?}"
        );
        // The healthy entries stay clean.
        assert!(!lints.iter().any(|(_, s)| *s == "USED_POINT"));
        assert!(!lints.iter().any(|(_, s)| *s == "BugId::Hooked"));
        assert!(!lints.iter().any(|(_, s)| *s == "gated_speedup"));
        assert!(!report.is_clean());
        // JSON output carries the same findings.
        let json = report.to_json();
        assert!(json.contains("\"clean\":false"));
        assert!(json.contains("GHOST_POINT"));
    }

    #[test]
    fn token_matching_respects_boundaries() {
        assert!(token_match("hit(pt::EXEC_SORT);", "pt::EXEC_SORT"));
        assert!(!token_match(
            "hit(pt::EXEC_SORT_POSITIONAL);",
            "pt::EXEC_SORT"
        ));
        assert!(token_match(
            "a(pt::EXEC_SORT_POSITIONAL); b(pt::EXEC_SORT)",
            "pt::EXEC_SORT"
        ));
    }
}
