//! `coddtest-analyze` — self-hosted registry lints as a CLI.
//!
//! Usage: `coddtest-analyze [--json] [--root <path>]`
//!
//! Exits 0 when the repository is drift-free, 1 when any lint fires
//! (CI runs this via `scripts/analyze_check`), 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use coddtest::analyze::analyze_repo;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: coddtest-analyze [--json] [--root <path>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    // Default to the workspace root this binary was built from.
    let root = root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."));

    let report = match analyze_repo(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("coddtest-analyze: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.to_text());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
