//! Deterministic test campaigns and metrics.
//!
//! A campaign runs an oracle for a fixed *test budget* against freshly
//! generated database states (a scaled-down, reproducible stand-in for the
//! paper's 24-hour wall-clock runs). It records the Table 3 metrics —
//! number of tests, successful and unsuccessful queries, queries per test
//! (QPT), unique query plans and branch coverage — plus every bug report.
//!
//! Campaigns are fully deterministic: state `i` is generated from seed
//! `f(campaign_seed, i)` and test `j` within it from `g(campaign_seed, i,
//! j)`, so any single test can be *re-run* under a different mutant
//! configuration. [`attribute_bugs`] uses this to map each finding back to
//! the injected [`BugId`] that caused it — the Table 1 accounting.

use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

use coddb::bugs::{BugId, BugRegistry};
use coddb::{Database, Dialect};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqlgen::state::generate_state;
use sqlgen::GenConfig;

use crate::{make_oracle, BugReport, Oracle, ReportKind, Session, TestOutcome};

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    pub dialect: Dialect,
    pub bugs: BugRegistry,
    pub gen: GenConfig,
    /// Total number of tests to run.
    pub tests: u64,
    /// Tests per generated database state (the paper loops steps ②-⑤ to
    /// "thoroughly test the generated database state").
    pub tests_per_state: u64,
    pub seed: u64,
    /// Stop at the first bug (used by detection-probe harnesses).
    pub stop_on_first_bug: bool,
}

impl CampaignConfig {
    pub fn new(dialect: Dialect) -> Self {
        CampaignConfig {
            dialect,
            bugs: BugRegistry::none(),
            gen: GenConfig::default(),
            tests: 1000,
            tests_per_state: 20,
            seed: 0xC0DD,
            stop_on_first_bug: false,
        }
    }
}

/// A bug found during a campaign, with its reproduction coordinates.
#[derive(Debug, Clone)]
pub struct Finding {
    pub report: BugReport,
    pub state_idx: u64,
    pub test_idx: u64,
    /// Injected mutants that reproduce this finding (filled by
    /// [`attribute_bugs`]).
    pub attributed: Vec<BugId>,
}

/// Aggregated campaign results (one row of Table 3).
#[derive(Debug, Clone)]
pub struct CampaignResult {
    pub oracle: String,
    pub tests_run: u64,
    pub passed: u64,
    pub skipped: u64,
    pub findings: Vec<Finding>,
    pub successful_queries: u64,
    pub unsuccessful_queries: u64,
    pub unique_plans: usize,
    pub coverage_percent: f64,
    pub elapsed: Duration,
}

impl CampaignResult {
    /// Queries per successfully executed test (Table 3's QPT).
    pub fn qpt(&self) -> f64 {
        let denom = (self.passed + self.findings.len() as u64).max(1);
        (self.successful_queries + self.unsuccessful_queries) as f64 / denom as f64
    }

    /// Average execution time per query, in microseconds (Figure 2).
    pub fn time_per_query_us(&self) -> f64 {
        let q = (self.successful_queries + self.unsuccessful_queries).max(1);
        self.elapsed.as_secs_f64() * 1e6 / q as f64
    }

    /// Distinct mutants attributed across all findings.
    pub fn unique_attributed_bugs(&self) -> BTreeSet<BugId> {
        self.findings
            .iter()
            .flat_map(|f| f.attributed.iter().copied())
            .collect()
    }

    /// Findings grouped by report kind.
    pub fn findings_by_kind(&self) -> BTreeMap<&'static str, usize> {
        let mut out = BTreeMap::new();
        for f in &self.findings {
            *out.entry(f.report.kind.label()).or_insert(0) += 1;
        }
        out
    }
}

fn state_seed(campaign_seed: u64, state_idx: u64) -> u64 {
    campaign_seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(state_idx.wrapping_mul(0xBF58_476D_1CE4_E5B9))
}

fn test_seed(campaign_seed: u64, state_idx: u64, test_idx: u64) -> u64 {
    state_seed(campaign_seed, state_idx)
        .wrapping_add(1 + test_idx.wrapping_mul(0x94D0_49BB_1331_11EB))
}

/// Apply the generated state statements; returns `None` when a statement
/// fails (e.g. an injected internal error during setup) so the caller can
/// regenerate.
fn apply_state(db: &mut Database, stmts: &[coddb::ast::Statement]) -> Option<()> {
    for s in stmts {
        if db.execute(s).is_err() {
            return None;
        }
    }
    Some(())
}

/// Run one campaign.
pub fn run_campaign(oracle: &mut dyn Oracle, cfg: &CampaignConfig) -> CampaignResult {
    let start = Instant::now();
    let mut result = CampaignResult {
        oracle: oracle.name().to_string(),
        tests_run: 0,
        passed: 0,
        skipped: 0,
        findings: Vec::new(),
        successful_queries: 0,
        unsuccessful_queries: 0,
        unique_plans: 0,
        coverage_percent: 0.0,
        elapsed: Duration::ZERO,
    };
    let mut plans: BTreeSet<u64> = BTreeSet::new();
    let coverage = coddb::coverage::Coverage::new();

    let mut state_idx = 0u64;
    let mut stop = false;
    while !stop && result.tests_run < cfg.tests {
        // Fresh state.
        let mut srng = StdRng::seed_from_u64(state_seed(cfg.seed, state_idx));
        let (stmts, schema) = generate_state(&mut srng, cfg.dialect, &cfg.gen);
        let mut db = Database::with_bugs(cfg.dialect, cfg.bugs.clone());
        if apply_state(&mut db, &stmts).is_none() {
            state_idx += 1;
            continue;
        }

        let mut session = Session::new(&mut db);
        for test_idx in 0..cfg.tests_per_state {
            if result.tests_run >= cfg.tests {
                break;
            }
            result.tests_run += 1;
            let mut trng = StdRng::seed_from_u64(test_seed(cfg.seed, state_idx, test_idx));
            match oracle.run_one(&mut session, &schema, &mut trng) {
                TestOutcome::Pass => result.passed += 1,
                TestOutcome::Skipped(_) => result.skipped += 1,
                TestOutcome::Bug(report) => {
                    result.findings.push(Finding {
                        report,
                        state_idx,
                        test_idx,
                        attributed: Vec::new(),
                    });
                    if cfg.stop_on_first_bug {
                        stop = true;
                        break;
                    }
                }
            }
        }
        // Single per-state accumulation point: each state's database owns
        // its own coverage bitset, folded in via `Coverage::merge` — the
        // same shape a parallel runner will use to combine per-thread
        // accumulators.
        result.successful_queries += session.ok_queries;
        result.unsuccessful_queries += session.err_queries;
        plans.extend(session.plans.iter().copied());
        coverage.merge(db.coverage());
        state_idx += 1;
    }

    result.unique_plans = plans.len();
    result.coverage_percent = coverage.percent();
    result.elapsed = start.elapsed();
    result
}

/// Re-run one specific campaign test under a given mutant configuration;
/// returns whether it reports a bug.
pub fn rerun_test(
    oracle_name: &str,
    cfg: &CampaignConfig,
    state_idx: u64,
    test_idx: u64,
    bugs: &BugRegistry,
) -> bool {
    let Some(mut oracle) = make_oracle(oracle_name) else {
        return false;
    };
    let mut srng = StdRng::seed_from_u64(state_seed(cfg.seed, state_idx));
    let (stmts, schema) = generate_state(&mut srng, cfg.dialect, &cfg.gen);
    let mut db = Database::with_bugs(cfg.dialect, bugs.clone());
    if apply_state(&mut db, &stmts).is_none() {
        // State setup itself fails under this mutant: the mutant is
        // responsible (e.g. an internal error in INSERT evaluation).
        return true;
    }
    let mut session = Session::new(&mut db);
    // Replay the *whole* state's tests up to and including the target:
    // earlier tests may have mutated the DQE-style private tables.
    for t in 0..=test_idx {
        let mut trng = StdRng::seed_from_u64(test_seed(cfg.seed, state_idx, t));
        let outcome = oracle.run_one(&mut session, &schema, &mut trng);
        if t == test_idx {
            return outcome.is_bug();
        }
    }
    false
}

/// Attribute every finding of a campaign to the injected mutant(s) that
/// reproduce it when enabled alone.
pub fn attribute_bugs(result: &mut CampaignResult, cfg: &CampaignConfig, oracle_name: &str) {
    let enabled: Vec<BugId> = cfg.bugs.enabled().collect();
    for finding in &mut result.findings {
        for &bug in &enabled {
            if rerun_test(
                oracle_name,
                cfg,
                finding.state_idx,
                finding.test_idx,
                &BugRegistry::only(bug),
            ) {
                finding.attributed.push(bug);
            }
        }
    }
}

/// Convenience: can `oracle_name` detect `bug` within `budget` tests?
/// Used by the Table 2 matrix harness.
pub fn detects_bug(
    oracle_name: &str,
    bug: BugId,
    budget: u64,
    seed: u64,
) -> Option<(u64, BugReport)> {
    let mut oracle = make_oracle(oracle_name)?;
    let cfg = CampaignConfig {
        bugs: BugRegistry::only(bug),
        tests: budget,
        stop_on_first_bug: true,
        seed,
        ..CampaignConfig::new(bug.dialect())
    };
    let result = run_campaign(oracle.as_mut(), &cfg);
    result
        .findings
        .into_iter()
        // Only count findings of the matching category: a logic mutant is
        // "detected" via a discrepancy, a crash mutant via a crash, etc.
        .find(|f| kind_matches(bug, &f.report.kind))
        .map(|f| (result.tests_run, f.report))
}

fn kind_matches(bug: BugId, kind: &ReportKind) -> bool {
    matches!(
        (bug.kind(), kind),
        (coddb::BugKind::Logic, ReportKind::LogicDiscrepancy)
            | (coddb::BugKind::InternalError, ReportKind::InternalError)
            | (coddb::BugKind::Crash, ReportKind::Crash)
            | (coddb::BugKind::Hang, ReportKind::Hang)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_campaign_finds_no_bugs() {
        let mut oracle = make_oracle("codd").unwrap();
        let cfg = CampaignConfig {
            tests: 120,
            ..CampaignConfig::new(Dialect::Sqlite)
        };
        let result = run_campaign(oracle.as_mut(), &cfg);
        assert_eq!(result.tests_run, 120);
        assert!(result.findings.is_empty(), "{:#?}", result.findings);
        assert!(result.successful_queries > 0);
        assert!(result.unique_plans > 0);
        assert!(result.coverage_percent > 20.0);
        assert!(
            result.qpt() >= 2.0,
            "CODDTest runs >= 3 queries per test, qpt={}",
            result.qpt()
        );
    }

    #[test]
    fn campaigns_are_deterministic() {
        let run = || {
            let mut oracle = make_oracle("norec").unwrap();
            let cfg = CampaignConfig {
                tests: 60,
                ..CampaignConfig::new(Dialect::Mysql)
            };
            let r = run_campaign(oracle.as_mut(), &cfg);
            (
                r.tests_run,
                r.successful_queries,
                r.unsuccessful_queries,
                r.unique_plans,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn buggy_campaign_finds_and_attributes() {
        // A campaign over the TiDB profile with the top-level IN bug must
        // find it and attribute the finding to that mutant.
        let bug = BugId::TidbInValueListWhere;
        let mut oracle = make_oracle("codd").unwrap();
        let cfg = CampaignConfig {
            bugs: BugRegistry::only(bug),
            tests: 800,
            ..CampaignConfig::new(Dialect::Tidb)
        };
        let mut result = run_campaign(oracle.as_mut(), &cfg);
        assert!(
            !result.findings.is_empty(),
            "CODDTest failed to find {bug:?}"
        );
        attribute_bugs(&mut result, &cfg, "codd");
        assert!(
            result.unique_attributed_bugs().contains(&bug),
            "attribution failed: {:?}",
            result
                .findings
                .iter()
                .map(|f| &f.attributed)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn detects_bug_probe_works() {
        let hit = detects_bug("codd", BugId::CockroachOrShortCircuitFalse, 1500, 7);
        assert!(hit.is_some(), "codd should detect the OR short-circuit bug");
        let (tests, report) = hit.unwrap();
        assert!(tests >= 1);
        assert_eq!(report.kind, ReportKind::LogicDiscrepancy);
    }
}
