//! Deterministic test campaigns and metrics.
//!
//! A campaign runs an oracle for a fixed *test budget* against freshly
//! generated database states (a scaled-down, reproducible stand-in for the
//! paper's 24-hour wall-clock runs). It records the Table 3 metrics —
//! number of tests, successful and unsuccessful queries, queries per test
//! (QPT), unique query plans and branch coverage — plus every bug report.
//!
//! # Reproduction contract
//!
//! Campaigns are fully deterministic: state `i` is generated from seed
//! [`state_seed`]`(campaign_seed, i)` and test `j` within it from
//! [`test_seed`]`(campaign_seed, i, j)`. These two functions are a **stable
//! contract**: a `(campaign_seed, state_idx, test_idx)` coordinate printed
//! by any harness re-derives the exact same database state and test in any
//! later build, so any single test can be *re-run* under a different mutant
//! configuration. [`attribute_bugs`] uses this to map each finding back to
//! the injected [`BugId`] that caused it — the Table 1 accounting.
//!
//! # Shard/merge determinism scheme
//!
//! Per-state work is isolated in [`run_state`]: it builds the state's
//! `Database`, runs the oracle's tests against it, and returns a
//! [`StateShard`] — a plain-data (`Send`) summary of everything the state
//! contributed: test outcomes, findings with their test coordinates,
//! per-outcome query tallies, plan fingerprints, and the state's coverage
//! bitset words (via [`coddb::coverage::Coverage::snapshot`]). Nothing in
//! the engine itself is `Send` (`Row` is `Rc`-shared, `Coverage` is
//! `Cell`-based), so the shard is the only thing that crosses threads.
//!
//! Both runners fold shards into the [`CampaignResult`] through the single
//! [`merge_shard`] accumulation point, **in ascending `state_idx` order**:
//!
//! * [`run_campaign`] computes each shard in order with the exact
//!   remaining test budget and merges it immediately.
//! * [`run_campaign_parallel`] fans state indices out to
//!   `std::thread::scope` workers (each constructs its own
//!   `Database`/`Session`/oracle locally), then merges the returned shards
//!   in ascending order. A worker's shard may cover more tests than the
//!   sequential runner would have granted that state (workers don't know
//!   how many earlier states failed setup); the merge detects such
//!   boundary states — and any shard a cancelled worker abandoned — and
//!   recomputes them inline with the exact remaining budget. Because state
//!   execution is seed-deterministic and `merge_shard` is shared, the
//!   merged result (findings order, plan set, coverage bitset, every
//!   counter) is byte-identical to the sequential runner at any thread
//!   count; only `elapsed` is wall-clock.
//!
//! With `stop_on_first_bug`, the earliest `(state_idx, test_idx)`
//! stop-matching finding wins: workers publish the lowest stopping state
//! index through a shared atomic high-water mark, workers past it cancel,
//! and the ascending merge stops at exactly the finding the sequential
//! runner would have stopped at.
//!
//! # Table 3 accounting
//!
//! `successful_queries`/`unsuccessful_queries` count every query issued
//! through the state's [`Session`] (plus setup statements that fail with an
//! *expected* error when a mutant breaks state generation — their coverage
//! and error tallies are merged before the state is regenerated, so mutant
//! campaigns don't under-report the statements actually executed). QPT —
//! [`CampaignResult::qpt`] — divides only the queries issued by *completed*
//! tests (outcome `Pass` or `Bug`) by the number of completed tests;
//! queries issued by `Skipped` tests and by state setup are excluded from
//! both numerator and denominator.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use coddb::bugs::{BugId, BugKind, BugRegistry, IndexBugId, MediaBugId, RecoveryBugId};
use coddb::coverage::Coverage;
use coddb::{Database, Dialect, Severity};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqlgen::state::generate_state;
use sqlgen::GenConfig;

use crate::{make_oracle, BugReport, Oracle, ReportKind, Session, TestOutcome};

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    pub dialect: Dialect,
    pub bugs: BugRegistry,
    pub gen: GenConfig,
    /// Total number of tests to run.
    pub tests: u64,
    /// Tests per generated database state (the paper loops steps ②-⑤ to
    /// "thoroughly test the generated database state"). Clamped to at
    /// least 1 — a zero here would otherwise generate states forever
    /// without ever spending the test budget.
    pub tests_per_state: u64,
    pub seed: u64,
    /// Stop at the first bug (used by detection-probe harnesses).
    pub stop_on_first_bug: bool,
    /// When set together with `stop_on_first_bug`, only findings whose
    /// report kind matches this mutant category end the campaign; findings
    /// of other kinds are still recorded but the budget keeps being spent.
    /// [`detects_bug`] uses this so a crash-first symptom cannot mask a
    /// logic mutant by halting the campaign on a non-matching finding.
    pub stop_kind: Option<BugKind>,
    /// Cap on *consecutive* setup failures before the campaign gives up on
    /// generating further states. Without it, a mutant configuration that
    /// breaks every generated setup would spin forever: failed states
    /// consume no test budget, so the campaign loop never terminates.
    /// Hitting the cap records a synthetic internal-error finding (with
    /// the failing state range) and ends the run. Clamped to at least 1.
    pub max_setup_retries: u64,
}

impl CampaignConfig {
    pub fn new(dialect: Dialect) -> Self {
        CampaignConfig {
            dialect,
            bugs: BugRegistry::none(),
            gen: GenConfig::default(),
            tests: 1000,
            tests_per_state: 20,
            seed: 0xC0DD,
            stop_on_first_bug: false,
            stop_kind: None,
            max_setup_retries: 64,
        }
    }
}

/// A bug found during a campaign, with its reproduction coordinates.
#[derive(Debug, Clone)]
pub struct Finding {
    pub report: BugReport,
    pub state_idx: u64,
    pub test_idx: u64,
    /// Injected mutants that reproduce this finding (filled by
    /// [`attribute_bugs`]).
    pub attributed: Vec<BugId>,
    /// Injected recovery-path mutants that reproduce this finding (filled
    /// by [`attribute_bugs`]; the recovery scheme is separate from the
    /// Table 1 scheme, so attributions are too).
    pub attributed_recovery: Vec<RecoveryBugId>,
    /// Injected index-path mutants that reproduce this finding (filled by
    /// [`attribute_bugs`]; the ordered-index scheme is a third mutant
    /// family with its own list for the same reason).
    pub attributed_index: Vec<IndexBugId>,
    /// Injected media-fault mutants that reproduce this finding (filled by
    /// [`attribute_bugs`]; the media scheme is a fourth mutant family with
    /// its own list for the same reason).
    pub attributed_media: Vec<MediaBugId>,
}

/// Aggregated campaign results (one row of Table 3).
#[derive(Debug, Clone, Default)]
pub struct CampaignResult {
    pub oracle: String,
    pub tests_run: u64,
    pub passed: u64,
    pub skipped: u64,
    pub findings: Vec<Finding>,
    pub successful_queries: u64,
    pub unsuccessful_queries: u64,
    /// Queries (successful + unsuccessful) issued by tests that passed.
    pub passed_queries: u64,
    /// Queries issued by tests that were skipped — excluded from
    /// [`CampaignResult::qpt`], whose denominator also excludes them.
    pub skipped_queries: u64,
    /// Queries issued by tests that produced a finding.
    pub finding_queries: u64,
    /// States whose setup failed under an injected mutant and were
    /// regenerated (their coverage and expected-error tallies still count).
    pub setup_failures: u64,
    pub unique_plans: usize,
    pub coverage_percent: f64,
    pub elapsed: Duration,
}

impl CampaignResult {
    /// Queries per completed test (Table 3's QPT).
    ///
    /// The numerator counts only queries issued by tests that ran to a
    /// verdict (`Pass` or `Bug`); the denominator counts those same tests.
    /// Queries issued by `Skipped` tests are excluded from *both* sides —
    /// a skip-heavy oracle does not get its QPT inflated by queries whose
    /// tests never completed. Queries issued while applying a generated
    /// state (including setup statements that fail under a mutant) are
    /// part of `successful_queries`/`unsuccessful_queries` but never of
    /// QPT.
    pub fn qpt(&self) -> f64 {
        let denom = (self.passed + self.findings.len() as u64).max(1);
        (self.passed_queries + self.finding_queries) as f64 / denom as f64
    }

    /// Average execution time per query, in microseconds (Figure 2).
    pub fn time_per_query_us(&self) -> f64 {
        let q = (self.successful_queries + self.unsuccessful_queries).max(1);
        self.elapsed.as_secs_f64() * 1e6 / q as f64
    }

    /// Distinct mutants attributed across all findings.
    pub fn unique_attributed_bugs(&self) -> BTreeSet<BugId> {
        self.findings
            .iter()
            .flat_map(|f| f.attributed.iter().copied())
            .collect()
    }

    /// Findings grouped by report kind.
    pub fn findings_by_kind(&self) -> BTreeMap<&'static str, usize> {
        let mut out = BTreeMap::new();
        for f in &self.findings {
            *out.entry(f.report.kind.label()).or_insert(0) += 1;
        }
        out
    }

    fn empty(oracle: String) -> CampaignResult {
        CampaignResult {
            oracle,
            ..CampaignResult::default()
        }
    }
}

/// Seed for generating campaign state `state_idx`.
///
/// Part of the stable reproduction contract (see the module docs): the
/// mapping from `(campaign_seed, state_idx)` to the generated database
/// state must not change across versions, or recorded bug coordinates and
/// [`attribute_bugs`] re-runs stop reproducing.
pub fn state_seed(campaign_seed: u64, state_idx: u64) -> u64 {
    campaign_seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(state_idx.wrapping_mul(0xBF58_476D_1CE4_E5B9))
}

/// Seed for test `test_idx` within campaign state `state_idx`. Stable for
/// the same reason as [`state_seed`].
pub fn test_seed(campaign_seed: u64, state_idx: u64, test_idx: u64) -> u64 {
    state_seed(campaign_seed, state_idx)
        .wrapping_add(1 + test_idx.wrapping_mul(0x94D0_49BB_1331_11EB))
}

/// Apply the generated state statements; the first failing statement (e.g.
/// an injected internal error during setup) aborts so the caller can
/// regenerate — but its error is returned so coverage/error accounting can
/// still be merged.
fn apply_state(db: &mut Database, stmts: &[coddb::ast::Statement]) -> Result<(), coddb::Error> {
    for s in stmts {
        db.execute(s)?;
    }
    Ok(())
}

/// Everything one campaign state contributed, as plain `Send` data — the
/// unit that crosses worker threads in [`run_campaign_parallel`] and the
/// unit [`merge_shard`] folds into the result in ascending `state_idx`
/// order (see the module docs for the determinism argument).
#[derive(Debug, Clone, Default)]
pub struct StateShard {
    pub state_idx: u64,
    /// State setup failed under a mutant; only `setup_err_queries` and
    /// `coverage_words` are meaningful.
    pub setup_failed: bool,
    /// 1 when the failing setup statement raised an *expected* error (the
    /// same classification [`Session`] applies to test queries);
    /// bug-signal setup errors are visible through coverage only.
    pub setup_err_queries: u64,
    pub tests_run: u64,
    pub passed: u64,
    pub skipped: u64,
    /// Findings with their in-state test coordinates, in test order.
    pub findings: Vec<(u64, BugReport)>,
    pub ok_queries: u64,
    pub err_queries: u64,
    pub passed_queries: u64,
    pub skipped_queries: u64,
    pub finding_queries: u64,
    /// The state session's plan fingerprints, sorted.
    pub plans: Vec<u64>,
    /// [`Coverage::snapshot`] of the state's database at the end of its
    /// tests (includes setup-statement coverage).
    pub coverage_words: Vec<u64>,
    /// The state ended early at a stop-matching finding.
    pub stopped: bool,
    /// A cancelled worker abandoned this state mid-run; the shard is
    /// incomplete and must be recomputed if the merge ever reaches it
    /// (it provably never does — see [`run_campaign_parallel`]).
    pub aborted: bool,
}

impl StateShard {
    fn new(state_idx: u64) -> StateShard {
        StateShard {
            state_idx,
            ..StateShard::default()
        }
    }
}

/// Best-effort rendering of a caught panic payload (panics carry `&str`
/// or `String` in practice).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

/// Does a finding of `kind` end a campaign under this configuration?
fn finding_stops(cfg: &CampaignConfig, kind: &ReportKind) -> bool {
    cfg.stop_on_first_bug
        && match cfg.stop_kind {
            None => true,
            Some(bug_kind) => kind_matches(bug_kind, kind),
        }
}

/// Run one campaign state: generate it from its [`state_seed`], apply it,
/// run up to `max_tests` oracle tests against it, and summarize everything
/// into a [`StateShard`]. `cancel` is polled between tests by parallel
/// workers; when it fires the shard comes back `aborted`.
fn run_state(
    oracle: &mut dyn Oracle,
    cfg: &CampaignConfig,
    state_idx: u64,
    max_tests: u64,
    cancel: Option<&dyn Fn() -> bool>,
) -> StateShard {
    let mut shard = StateShard::new(state_idx);
    let mut srng = StdRng::seed_from_u64(state_seed(cfg.seed, state_idx));
    let (stmts, schema) = generate_state(&mut srng, cfg.dialect, &cfg.gen);
    let mut db = Database::with_bugs(cfg.dialect, cfg.bugs.clone());
    if let Err(e) = apply_state(&mut db, &stmts) {
        // A mutant broke state setup. The statements still executed:
        // record the state's coverage and — when the failure is an
        // expected error, the class Session tallies — the error itself,
        // so mutant campaigns don't under-report what actually ran.
        shard.setup_failed = true;
        if e.severity() == Severity::Expected {
            shard.setup_err_queries = 1;
        }
        shard.coverage_words = db.coverage().snapshot();
        return shard;
    }

    let oracle_label = oracle.name();
    let mut session = Session::new(&mut db);
    for test_idx in 0..max_tests {
        if let Some(cancel) = cancel {
            if cancel() {
                shard.aborted = true;
                return shard;
            }
        }
        let queries_before = session.queries_issued();
        let mut trng = StdRng::seed_from_u64(test_seed(cfg.seed, state_idx, test_idx));
        // Panic isolation: a panicking engine or oracle bug becomes a
        // counted `Crash`-kind finding with its reproduction coordinates
        // instead of tearing down the whole campaign. Determinism holds
        // because both runners share this function: the same seed panics
        // at the same test either way.
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            oracle.run_one(&mut session, &schema, &mut trng)
        }));
        let outcome = match run {
            Ok(outcome) => outcome,
            Err(payload) => {
                let test_queries = session.queries_issued() - queries_before;
                shard.tests_run += 1;
                shard.finding_queries += test_queries;
                let report = BugReport {
                    oracle: oracle_label,
                    kind: ReportKind::Crash,
                    queries: Vec::new(),
                    detail: format!(
                        "oracle panicked: {} (repro: state_seed={:#x}, test_seed={:#x})",
                        panic_message(payload.as_ref()),
                        state_seed(cfg.seed, state_idx),
                        test_seed(cfg.seed, state_idx, test_idx),
                    ),
                };
                shard.stopped = finding_stops(cfg, &report.kind);
                shard.findings.push((test_idx, report));
                // The unwound engine may hold a half-applied statement;
                // nothing further from this state is trustworthy.
                break;
            }
        };
        let test_queries = session.queries_issued() - queries_before;
        shard.tests_run += 1;
        match outcome {
            TestOutcome::Pass => {
                shard.passed += 1;
                shard.passed_queries += test_queries;
            }
            TestOutcome::Skipped(_) => {
                shard.skipped += 1;
                shard.skipped_queries += test_queries;
            }
            TestOutcome::Bug(report) => {
                shard.finding_queries += test_queries;
                let stops = finding_stops(cfg, &report.kind);
                shard.findings.push((test_idx, report));
                if stops {
                    shard.stopped = true;
                    break;
                }
            }
        }
    }
    shard.ok_queries = session.ok_queries;
    shard.err_queries = session.err_queries;
    shard.plans = session.plans.iter().copied().collect();
    shard.coverage_words = db.coverage().snapshot();
    shard
}

/// The single accumulation point both runners share: fold one state's
/// shard into the campaign result. Returns whether the campaign stops
/// here (the shard ended at a stop-matching finding).
fn merge_shard(
    result: &mut CampaignResult,
    plans: &mut BTreeSet<u64>,
    coverage: &Coverage,
    shard: StateShard,
) -> bool {
    debug_assert!(!shard.aborted, "merged an abandoned shard");
    if shard.setup_failed {
        result.setup_failures += 1;
        result.unsuccessful_queries += shard.setup_err_queries;
        coverage.merge_words(&shard.coverage_words);
        return false;
    }
    result.tests_run += shard.tests_run;
    result.passed += shard.passed;
    result.skipped += shard.skipped;
    for (test_idx, report) in shard.findings {
        result.findings.push(Finding {
            report,
            state_idx: shard.state_idx,
            test_idx,
            attributed: Vec::new(),
            attributed_recovery: Vec::new(),
            attributed_index: Vec::new(),
            attributed_media: Vec::new(),
        });
    }
    result.successful_queries += shard.ok_queries;
    result.unsuccessful_queries += shard.err_queries;
    result.passed_queries += shard.passed_queries;
    result.skipped_queries += shard.skipped_queries;
    result.finding_queries += shard.finding_queries;
    plans.extend(shard.plans.iter().copied());
    coverage.merge_words(&shard.coverage_words);
    shard.stopped
}

/// The one campaign loop both runners share: walk state indices in
/// ascending order, grant each state the exact remaining test budget, and
/// fold the shard `shard_for` produces through [`merge_shard`] until the
/// budget is spent or a stop-matching finding ends the run. The sequential
/// runner computes every shard here; the parallel runner's `shard_for`
/// serves precomputed worker shards and recomputes only boundary states —
/// one budget formula, one merge skeleton, byte-identical results.
fn drive_campaign(
    oracle_label: String,
    cfg: &CampaignConfig,
    start: Instant,
    mut shard_for: impl FnMut(u64, u64) -> StateShard,
) -> CampaignResult {
    let mut result = CampaignResult::empty(oracle_label);
    let mut plans: BTreeSet<u64> = BTreeSet::new();
    let coverage = Coverage::new();

    let mut state_idx = 0u64;
    let mut stop = false;
    let mut consecutive_setup_failures = 0u64;
    while !stop && result.tests_run < cfg.tests {
        let max_tests = cfg.tests_per_state.max(1).min(cfg.tests - result.tests_run);
        let shard = shard_for(state_idx, max_tests);
        let setup_failed = shard.setup_failed;
        stop = merge_shard(&mut result, &mut plans, &coverage, shard);
        if setup_failed {
            // Graceful budget degradation: a configuration whose generated
            // setups keep failing is abandoned with a recorded finding
            // instead of being retried forever (failed states consume no
            // budget, so the loop alone would never terminate).
            consecutive_setup_failures += 1;
            if consecutive_setup_failures >= cfg.max_setup_retries.max(1) {
                let first = state_idx + 1 - consecutive_setup_failures;
                result.findings.push(Finding {
                    report: BugReport {
                        oracle: "campaign",
                        kind: ReportKind::InternalError,
                        queries: Vec::new(),
                        detail: format!(
                            "state setup failed {consecutive_setup_failures} consecutive \
                             times (states {first}..={state_idx}); abandoning the \
                             remaining test budget"
                        ),
                    },
                    state_idx,
                    test_idx: 0,
                    attributed: Vec::new(),
                    attributed_recovery: Vec::new(),
                    attributed_index: Vec::new(),
                    attributed_media: Vec::new(),
                });
                stop = true;
            }
        } else {
            consecutive_setup_failures = 0;
        }
        state_idx += 1;
    }

    result.unique_plans = plans.len();
    result.coverage_percent = coverage.percent();
    result.elapsed = start.elapsed();
    result
}

/// Run one campaign.
pub fn run_campaign(oracle: &mut dyn Oracle, cfg: &CampaignConfig) -> CampaignResult {
    let start = Instant::now();
    drive_campaign(
        oracle.name().to_string(),
        cfg,
        start,
        |state_idx, max_tests| run_state(oracle, cfg, state_idx, max_tests, None),
    )
}

/// Run one campaign across `threads` worker threads; byte-identical to
/// [`run_campaign`] with a fresh `oracle_name` oracle at any thread count
/// (see the module docs for the scheme). Returns `None` for an unknown
/// oracle name.
///
/// Scheduling is dynamic: workers claim the next unclaimed `state_idx`
/// from a shared counter (states vary wildly in cost — a failing setup is
/// ~free, a full state runs `tests_per_state` oracle tests — so static
/// range splitting would load-imbalance). Workers stop claiming once the
/// claimed successful states cover the test budget; with
/// `stop_on_first_bug` they additionally publish the lowest stopping state
/// index in an atomic high-water mark and cancel any state past it.
///
/// Shards stream to the merging thread over a channel while workers run:
/// the merge (the same [`drive_campaign`] loop as the sequential runner)
/// consumes the ascending prefix as it arrives and parks out-of-order
/// shards in a reorder window. Workers may run at most a fixed window of
/// states ahead of the merge floor, so resident memory is O(threads), not
/// O(states) — a 24-hour-scale campaign streams through the same few
/// dozen buffered shards the whole run.
///
/// Why the merge never needs an abandoned shard: a worker only abandons
/// state `i` when `i` is greater than the high-water mark `H`, and the
/// shard for `H` then contains a stop-matching finding at some test `j`.
/// Merging in ascending order reaches `H` with some remaining budget `R`;
/// either `R > j` and the merge stops at that finding, or `R <= j < `
/// `tests_per_state`, which makes `H` the budget-boundary state and the
/// merge recomputes it with `max_tests = R` and stops there on budget
/// exhaustion. Either way no state past `H` is merged (and a missing or
/// abandoned shard is recomputed inline if it were).
pub fn run_campaign_parallel(
    oracle_name: &str,
    cfg: &CampaignConfig,
    threads: usize,
) -> Option<CampaignResult> {
    // Validate the oracle name before spawning anything.
    let probe = make_oracle(oracle_name)?;
    let oracle_label = probe.name().to_string();
    drop(probe);

    let start = Instant::now();
    let threads = threads.max(1);
    // Successful states needed to cover the budget; states that fail setup
    // consume an index but no budget, so the claimable range grows by one
    // for every observed failure.
    let needed_states = cfg.tests.div_ceil(cfg.tests_per_state.max(1));
    let next_state = &AtomicU64::new(0);
    let successes = &AtomicU64::new(0);
    let failures = &AtomicU64::new(0);
    let high_water = &AtomicU64::new(u64::MAX);
    // Next state index the merge needs; workers stay within `window` of it.
    let merge_floor = &AtomicU64::new(0);
    let window = (threads as u64) * 4;
    let (tx, rx) = std::sync::mpsc::channel::<StateShard>();

    let result = std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            scope.spawn(move || {
                let mut oracle = make_oracle(oracle_name).expect("oracle name validated above");
                let mut waits = 0u32;
                loop {
                    if successes.load(Ordering::Relaxed) >= needed_states {
                        break;
                    }
                    let claimed = next_state.load(Ordering::Relaxed);
                    if claimed > high_water.load(Ordering::Relaxed) {
                        break;
                    }
                    // Claim-bounded scheduling: at most `needed + failures`
                    // states may ever be claimed — exactly the states the
                    // sequential runner could reach — so workers never burn
                    // budgetless work racing ahead; and claims stay within
                    // the reorder window of the merge floor, bounding how
                    // many shards can be in flight. When either bound is
                    // reached, wait for in-flight states to settle (a
                    // failure raises the claim bound, merge progress raises
                    // the floor, the final success ends the campaign).
                    let limit = (needed_states + failures.load(Ordering::Relaxed))
                        .min(merge_floor.load(Ordering::Relaxed).saturating_add(window));
                    if claimed >= limit {
                        // Back off after a burst of yields so waiting
                        // workers stop stealing scheduler slices from the
                        // ones still finishing states (it matters when
                        // cores < threads).
                        waits += 1;
                        if waits < 64 {
                            std::thread::yield_now();
                        } else {
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        continue;
                    }
                    waits = 0;
                    if next_state
                        .compare_exchange(
                            claimed,
                            claimed + 1,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        )
                        .is_err()
                    {
                        continue;
                    }
                    let state_idx = claimed;
                    let cancel = || state_idx > high_water.load(Ordering::Relaxed);
                    // No state is ever granted more than min(tests_per_state,
                    // tests), so don't run tests a tiny campaign could never
                    // count (the merge would reject and recompute the shard).
                    let max_tests = cfg.tests_per_state.max(1).min(cfg.tests);
                    let shard =
                        run_state(oracle.as_mut(), cfg, state_idx, max_tests, Some(&cancel));
                    if !shard.aborted {
                        if shard.setup_failed {
                            failures.fetch_add(1, Ordering::Relaxed);
                        } else {
                            successes.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    if shard.stopped {
                        high_water.fetch_min(state_idx, Ordering::Relaxed);
                    }
                    if tx.send(shard).is_err() {
                        // The merge finished and hung up; nothing more to do.
                        break;
                    }
                }
            });
        }
        // Only workers hold senders now, so `rx` disconnects when the last
        // worker exits.
        drop(tx);

        // Deterministic ascending merge through the same campaign loop as
        // the sequential runner, streaming shards as workers finish them.
        let mut reorder: BTreeMap<u64, StateShard> = BTreeMap::new();
        let mut rerun_oracle: Option<Box<dyn Oracle>> = None;
        drive_campaign(oracle_label, cfg, start, |state_idx, max_tests| {
            merge_floor.store(state_idx, Ordering::Relaxed);
            let received = loop {
                if let Some(s) = reorder.remove(&state_idx) {
                    break Some(s);
                }
                match rx.recv() {
                    Ok(s) if s.state_idx == state_idx => break Some(s),
                    Ok(s) => {
                        reorder.insert(s.state_idx, s);
                    }
                    // All workers exited without producing this state (they
                    // broke off after claiming it, or it was cancelled).
                    Err(_) => break None,
                }
            };
            // A worker shard is usable as-is unless it was abandoned,
            // missing, or ran more tests than the remaining budget grants
            // this state (the boundary state). Those are recomputed here
            // with the exact budget.
            match received {
                Some(s) if !s.aborted && s.tests_run <= max_tests => s,
                _ => {
                    let oracle = rerun_oracle
                        .get_or_insert_with(|| make_oracle(oracle_name).expect("validated"));
                    run_state(oracle.as_mut(), cfg, state_idx, max_tests, None)
                }
            }
        })
    });
    Some(result)
}

/// Re-run one specific campaign test under a given mutant configuration;
/// returns whether it reports a bug.
pub fn rerun_test(
    oracle_name: &str,
    cfg: &CampaignConfig,
    state_idx: u64,
    test_idx: u64,
    bugs: &BugRegistry,
) -> bool {
    let Some(mut oracle) = make_oracle(oracle_name) else {
        return false;
    };
    let mut srng = StdRng::seed_from_u64(state_seed(cfg.seed, state_idx));
    let (stmts, schema) = generate_state(&mut srng, cfg.dialect, &cfg.gen);
    let mut db = Database::with_bugs(cfg.dialect, bugs.clone());
    if apply_state(&mut db, &stmts).is_err() {
        // State setup itself fails under this mutant: the mutant is
        // responsible (e.g. an internal error in INSERT evaluation).
        return true;
    }
    let mut session = Session::new(&mut db);
    // Replay the *whole* state's tests up to and including the target:
    // earlier tests may have mutated the DQE-style private tables.
    for t in 0..=test_idx {
        let mut trng = StdRng::seed_from_u64(test_seed(cfg.seed, state_idx, t));
        let outcome = oracle.run_one(&mut session, &schema, &mut trng);
        if t == test_idx {
            return outcome.is_bug();
        }
    }
    false
}

/// Attribute every finding of a campaign to the injected mutant(s) that
/// reproduce it when enabled alone.
pub fn attribute_bugs(result: &mut CampaignResult, cfg: &CampaignConfig, oracle_name: &str) {
    attribute_bugs_parallel(result, cfg, oracle_name, 1);
}

/// [`attribute_bugs`] fanned out across `threads` workers: every
/// `(finding, mutant)` re-run is an independent seed-deterministic replay,
/// so workers pull jobs from a shared counter and the attributions are
/// written back in the same `(finding, enabled-mutant)` order the
/// sequential version produces — identical output at any thread count.
pub fn attribute_bugs_parallel(
    result: &mut CampaignResult,
    cfg: &CampaignConfig,
    oracle_name: &str,
    threads: usize,
) {
    /// One mutant to replay a finding under — engine (Table 1) and
    /// recovery-path schemes attribute through the same machinery but
    /// stay in separate result lists.
    #[derive(Clone, Copy)]
    enum Mutant {
        Engine(BugId),
        Recovery(RecoveryBugId),
        Index(IndexBugId),
        Media(MediaBugId),
    }
    impl Mutant {
        fn registry(self) -> BugRegistry {
            match self {
                Mutant::Engine(b) => BugRegistry::only(b),
                Mutant::Recovery(b) => BugRegistry::only_recovery(b),
                Mutant::Index(b) => BugRegistry::only_index(b),
                Mutant::Media(b) => BugRegistry::only_media(b),
            }
        }
    }

    let enabled: Vec<Mutant> = cfg
        .bugs
        .enabled()
        .map(Mutant::Engine)
        .chain(cfg.bugs.enabled_recovery().map(Mutant::Recovery))
        .chain(cfg.bugs.enabled_index().map(Mutant::Index))
        .chain(cfg.bugs.enabled_media().map(Mutant::Media))
        .collect();
    let coords: Vec<(u64, u64)> = result
        .findings
        .iter()
        .map(|f| (f.state_idx, f.test_idx))
        .collect();
    let jobs: Vec<(usize, Mutant)> = coords
        .iter()
        .enumerate()
        .flat_map(|(fi, _)| enabled.iter().map(move |&bug| (fi, bug)))
        .collect();

    let next_job = AtomicUsize::new(0);
    let hits: Vec<std::sync::atomic::AtomicBool> = jobs
        .iter()
        .map(|_| std::sync::atomic::AtomicBool::new(false))
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|| loop {
                let j = next_job.fetch_add(1, Ordering::Relaxed);
                let Some(&(fi, bug)) = jobs.get(j) else {
                    break;
                };
                let (state_idx, test_idx) = coords[fi];
                if rerun_test(oracle_name, cfg, state_idx, test_idx, &bug.registry()) {
                    hits[j].store(true, Ordering::Relaxed);
                }
            });
        }
    });
    for (j, &(fi, bug)) in jobs.iter().enumerate() {
        if hits[j].load(Ordering::Relaxed) {
            match bug {
                Mutant::Engine(b) => result.findings[fi].attributed.push(b),
                Mutant::Recovery(b) => result.findings[fi].attributed_recovery.push(b),
                Mutant::Index(b) => result.findings[fi].attributed_index.push(b),
                Mutant::Media(b) => result.findings[fi].attributed_media.push(b),
            }
        }
    }
}

/// Convenience: can `oracle_name` detect `bug` within `budget` tests?
/// Used by the Table 2 matrix harness.
///
/// The campaign stops at the first finding whose kind matches the
/// mutant's category (`stop_kind`), not at the first finding of any kind:
/// a mutant whose earliest symptom is e.g. a crash-kind report keeps the
/// campaign running until a kind-matching finding appears or the budget
/// is exhausted, instead of being reported as undetected with budget
/// unspent.
pub fn detects_bug(
    oracle_name: &str,
    bug: BugId,
    budget: u64,
    seed: u64,
) -> Option<(u64, BugReport)> {
    let mut oracle = make_oracle(oracle_name)?;
    let cfg = CampaignConfig {
        bugs: BugRegistry::only(bug),
        tests: budget,
        stop_on_first_bug: true,
        stop_kind: Some(bug.kind()),
        seed,
        ..CampaignConfig::new(bug.dialect())
    };
    let result = run_campaign(oracle.as_mut(), &cfg);
    result
        .findings
        .into_iter()
        // Only count findings of the matching category: a logic mutant is
        // "detected" via a discrepancy, a crash mutant via a crash, etc.
        .find(|f| kind_matches(bug.kind(), &f.report.kind))
        .map(|f| (result.tests_run, f.report))
}

fn kind_matches(bug_kind: BugKind, kind: &ReportKind) -> bool {
    matches!(
        (bug_kind, kind),
        (BugKind::Logic, ReportKind::LogicDiscrepancy)
            | (BugKind::InternalError, ReportKind::InternalError)
            | (BugKind::Crash, ReportKind::Crash)
            | (BugKind::Hang, ReportKind::Hang)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_campaign_finds_no_bugs() {
        let mut oracle = make_oracle("codd").unwrap();
        let cfg = CampaignConfig {
            tests: 120,
            ..CampaignConfig::new(Dialect::Sqlite)
        };
        let result = run_campaign(oracle.as_mut(), &cfg);
        assert_eq!(result.tests_run, 120);
        assert!(result.findings.is_empty(), "{:#?}", result.findings);
        assert!(result.successful_queries > 0);
        assert!(result.unique_plans > 0);
        assert!(result.coverage_percent > 20.0);
        assert!(
            result.qpt() >= 2.0,
            "CODDTest runs >= 3 queries per test, qpt={}",
            result.qpt()
        );
        // Per-outcome query tallies partition the session totals.
        assert_eq!(
            result.passed_queries + result.skipped_queries + result.finding_queries,
            result.successful_queries + result.unsuccessful_queries
        );
    }

    #[test]
    fn campaigns_are_deterministic() {
        let run = || {
            let mut oracle = make_oracle("norec").unwrap();
            let cfg = CampaignConfig {
                tests: 60,
                ..CampaignConfig::new(Dialect::Mysql)
            };
            let r = run_campaign(oracle.as_mut(), &cfg);
            (
                r.tests_run,
                r.successful_queries,
                r.unsuccessful_queries,
                r.unique_plans,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn buggy_campaign_finds_and_attributes() {
        // A campaign over the TiDB profile with the top-level IN bug must
        // find it and attribute the finding to that mutant.
        let bug = BugId::TidbInValueListWhere;
        let mut oracle = make_oracle("codd").unwrap();
        let cfg = CampaignConfig {
            bugs: BugRegistry::only(bug),
            tests: 800,
            ..CampaignConfig::new(Dialect::Tidb)
        };
        let mut result = run_campaign(oracle.as_mut(), &cfg);
        assert!(
            !result.findings.is_empty(),
            "CODDTest failed to find {bug:?}"
        );
        attribute_bugs(&mut result, &cfg, "codd");
        assert!(
            result.unique_attributed_bugs().contains(&bug),
            "attribution failed: {:?}",
            result
                .findings
                .iter()
                .map(|f| &f.attributed)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn detects_bug_probe_works() {
        let hit = detects_bug("codd", BugId::CockroachOrShortCircuitFalse, 1500, 7);
        assert!(hit.is_some(), "codd should detect the OR short-circuit bug");
        let (tests, report) = hit.unwrap();
        assert!(tests >= 1);
        assert_eq!(report.kind, ReportKind::LogicDiscrepancy);
    }

    /// Regression for the setup-failure accounting bug: when a mutant
    /// breaks `apply_state`, the state's coverage and expected-error tally
    /// must be merged before the state is regenerated. No current mutant
    /// can fail a *generated* setup statement end-to-end (setup is all
    /// literal DDL/DML), so this exercises the shared `merge_shard`
    /// accumulation point — the code path `run_campaign` and
    /// `run_campaign_parallel` both fold every state through — against a
    /// setup-failed shard built from a real database's coverage.
    #[test]
    fn setup_failed_shard_merges_coverage_and_error_tally() {
        // A database that executed some setup statements before failing.
        let mut db = Database::new(Dialect::Sqlite);
        db.execute_sql("CREATE TABLE t (v INT); INSERT INTO t VALUES (1), (2)")
            .unwrap();
        let setup_cov = db.coverage().snapshot();
        let setup_hits = db.coverage().hit_count();
        assert!(setup_hits > 0, "setup statements exercise branch points");

        let mut failed = StateShard::new(0);
        failed.setup_failed = true;
        failed.setup_err_queries = 1;
        failed.coverage_words = setup_cov;

        let mut result = CampaignResult::empty("test".into());
        let mut plans = BTreeSet::new();
        let coverage = Coverage::new();
        let stop = merge_shard(&mut result, &mut plans, &coverage, failed);

        assert!(!stop, "a failed setup never stops a campaign");
        assert_eq!(result.setup_failures, 1);
        assert_eq!(result.unsuccessful_queries, 1);
        assert_eq!(result.tests_run, 0, "failed states contribute no tests");
        assert_eq!(
            coverage.hit_count(),
            setup_hits,
            "the failed state's coverage must be merged, not dropped"
        );

        // A later successful state unions on top, exactly like the
        // sequential accumulation point.
        let mut oracle = make_oracle("codd").unwrap();
        let cfg = CampaignConfig::new(Dialect::Sqlite);
        let ok_shard = run_state(oracle.as_mut(), &cfg, 0, 5, None);
        assert!(!ok_shard.setup_failed);
        merge_shard(&mut result, &mut plans, &coverage, ok_shard);
        assert!(coverage.hit_count() >= setup_hits);
        assert_eq!(result.tests_run, 5);
    }

    /// `apply_state` surfaces the failing statement's error (instead of a
    /// bare `None`) so the campaign can classify it the way `Session`
    /// classifies test queries: expected errors tally, bug-signal errors
    /// are visible through coverage only.
    #[test]
    fn apply_state_returns_classifiable_error() {
        let mut db = Database::new(Dialect::Sqlite);
        let stmts = coddb::parser::parse_statements(
            "CREATE TABLE t (v INT); INSERT INTO t VALUES (1); \
                 INSERT INTO missing VALUES (1)",
        )
        .unwrap();
        let err = apply_state(&mut db, &stmts).unwrap_err();
        assert_eq!(err.severity(), Severity::Expected);
        assert!(
            db.coverage().hit_count() > 0,
            "statements before the failure left coverage behind"
        );
    }

    /// Regression for panic isolation: a panicking oracle surfaces as
    /// counted `Crash`-kind findings carrying `(state_seed, test_seed)`
    /// repro coordinates — in both runners, byte-identically — instead of
    /// aborting the campaign.
    #[test]
    fn panicking_oracle_becomes_counted_crash_findings() {
        // Silence the default hook's backtrace spam for the injected
        // panics (worker threads aren't under test output capture).
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let cfg = CampaignConfig {
            tests: 200,
            ..CampaignConfig::new(Dialect::Sqlite)
        };
        let mut oracle = make_oracle("panic-probe").unwrap();
        let seq = run_campaign(oracle.as_mut(), &cfg);
        let par = run_campaign_parallel("panic-probe", &cfg, 4).unwrap();
        std::panic::set_hook(prev);

        assert!(!seq.findings.is_empty(), "probe never panicked");
        for f in &seq.findings {
            assert_eq!(f.report.kind, ReportKind::Crash);
            assert!(f.report.detail.contains("oracle panicked"));
            assert!(
                f.report.detail.contains(&format!(
                    "state_seed={:#x}, test_seed={:#x}",
                    state_seed(cfg.seed, f.state_idx),
                    test_seed(cfg.seed, f.state_idx, f.test_idx)
                )),
                "finding lacks its repro coordinates: {}",
                f.report.detail
            );
        }
        let coords = |r: &CampaignResult| {
            r.findings
                .iter()
                .map(|f| (f.state_idx, f.test_idx, f.report.detail.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(seq.tests_run, par.tests_run);
        assert_eq!(coords(&seq), coords(&par));
    }

    /// The setup-retry cap turns a hopeless configuration (every generated
    /// setup fails) into a recorded finding instead of an infinite loop,
    /// and `merge_shard` keeps counting every failure on the way there.
    #[test]
    fn setup_retry_cap_abandons_hopeless_campaigns() {
        let cfg = CampaignConfig {
            max_setup_retries: 5,
            tests: 100,
            ..CampaignConfig::new(Dialect::Sqlite)
        };
        let result = drive_campaign("test".into(), &cfg, Instant::now(), |state_idx, _| {
            let mut s = StateShard::new(state_idx);
            s.setup_failed = true;
            s.setup_err_queries = 1;
            s.coverage_words = Coverage::new().snapshot();
            s
        });
        assert_eq!(result.setup_failures, 5, "every failure merged");
        assert_eq!(result.unsuccessful_queries, 5);
        assert_eq!(result.tests_run, 0);
        assert_eq!(result.findings.len(), 1);
        let f = &result.findings[0];
        assert_eq!(f.report.oracle, "campaign");
        assert_eq!(f.report.kind, ReportKind::InternalError);
        assert!(
            f.report.detail.contains("5 consecutive"),
            "{}",
            f.report.detail
        );
        assert_eq!(f.state_idx, 4, "finding points at the last failing state");
    }

    /// Intermittent setup failures never trip the cap: the counter is
    /// consecutive, resetting on every successful state.
    #[test]
    fn setup_retry_cap_is_consecutive_not_cumulative() {
        let cfg = CampaignConfig {
            max_setup_retries: 2,
            tests: 40,
            ..CampaignConfig::new(Dialect::Sqlite)
        };
        let mut oracle = make_oracle("codd").unwrap();
        let result = drive_campaign("test".into(), &cfg, Instant::now(), |state_idx, max| {
            if state_idx % 2 == 0 {
                let mut s = StateShard::new(state_idx);
                s.setup_failed = true;
                s.coverage_words = Coverage::new().snapshot();
                s
            } else {
                run_state(oracle.as_mut(), &cfg, state_idx, max, None)
            }
        });
        assert_eq!(result.tests_run, 40, "budget fully spent");
        assert!(result.setup_failures >= 2, "alternating failures merged");
        assert!(
            result.findings.is_empty(),
            "no synthetic finding for non-consecutive failures: {:#?}",
            result.findings
        );
    }

    /// Findings produced by recovery-path mutants attribute into the
    /// separate `attributed_recovery` list via the same replay machinery.
    #[test]
    fn recovery_findings_attribute_to_recovery_mutants() {
        let bug = RecoveryBugId::DropLastCommit;
        let cfg = CampaignConfig {
            bugs: BugRegistry::only_recovery(bug),
            tests: 40,
            ..CampaignConfig::new(Dialect::Sqlite)
        };
        let mut oracle = make_oracle("recover").unwrap();
        let mut result = run_campaign(oracle.as_mut(), &cfg);
        assert!(
            !result.findings.is_empty(),
            "recover never caught the mutant"
        );
        attribute_bugs_parallel(&mut result, &cfg, "recover", 2);
        assert!(
            result
                .findings
                .iter()
                .any(|f| f.attributed_recovery.contains(&bug)),
            "no finding attributed to {bug:?}: {:#?}",
            result
                .findings
                .iter()
                .map(|f| (&f.attributed, &f.attributed_recovery))
                .collect::<Vec<_>>()
        );
        assert!(
            result.findings.iter().all(|f| f.attributed.is_empty()),
            "recovery findings must not attribute to Table 1 mutants"
        );
    }

    #[test]
    fn checkpoint_mutant_findings_attribute_through_the_same_machinery() {
        // The checkpoint-path mutants ride the same RecoveryBugId plumbing
        // as the log-replay ones: findings re-run under each enabled
        // recovery mutant alone and land in `attributed_recovery`.
        let bug = RecoveryBugId::ReplayFromWrongOffset;
        let cfg = CampaignConfig {
            bugs: BugRegistry::only_recovery(bug),
            tests: 400,
            stop_on_first_bug: true,
            ..CampaignConfig::new(Dialect::Sqlite)
        };
        let mut oracle = make_oracle("recover").unwrap();
        let mut result = run_campaign(oracle.as_mut(), &cfg);
        assert!(
            !result.findings.is_empty(),
            "recover never caught the checkpoint mutant"
        );
        attribute_bugs_parallel(&mut result, &cfg, "recover", 2);
        assert!(
            result
                .findings
                .iter()
                .any(|f| f.attributed_recovery.contains(&bug)),
            "no finding attributed to {bug:?}"
        );
    }

    /// Index-path mutants: the ordered-seek bug family is campaign-visible
    /// — constant folding flips a leading conjunct's sargability, so
    /// exactly one of O/F seeks and the mutant no longer cancels out —
    /// and findings attribute into `attributed_index` through the same
    /// replay machinery, reproducing from (state_idx, test_idx) alone.
    #[test]
    fn index_mutant_findings_attribute_to_index_mutants() {
        for (bug, seed, budget) in [
            (IndexBugId::PrefixSeekIgnoresResidual, 0xC0DD, 500),
            (IndexBugId::EqSeekMissesDuplicates, 2, 600),
            (IndexBugId::StaleEntryAfterUpdate, 0xC0DD, 1500),
            (IndexBugId::SortElimWrongDirection, 7, 2000),
        ] {
            let cfg = CampaignConfig {
                bugs: BugRegistry::only_index(bug),
                tests: budget,
                seed,
                stop_on_first_bug: true,
                ..CampaignConfig::new(Dialect::Sqlite)
            };
            let mut oracle = make_oracle("codd").unwrap();
            let mut result = run_campaign(oracle.as_mut(), &cfg);
            assert!(!result.findings.is_empty(), "codd never caught {bug:?}");
            attribute_bugs_parallel(&mut result, &cfg, "codd", 2);
            assert!(
                result
                    .findings
                    .iter()
                    .any(|f| f.attributed_index.contains(&bug)),
                "no finding attributed to {bug:?}: {:#?}",
                result.findings
            );
            assert!(
                result
                    .findings
                    .iter()
                    .all(|f| f.attributed.is_empty() && f.attributed_recovery.is_empty()),
                "index findings must not attribute to other mutant families"
            );
        }
    }

    /// The `verify` oracle catches plan-corrupting mutants *statically*:
    /// the corrupted plan tree itself is the finding — no row executed —
    /// and findings attribute through the standard replay machinery,
    /// reproducing from (state_idx, test_idx) alone.
    #[test]
    fn verify_oracle_catches_plan_corrupting_mutants_statically() {
        // Engine family: illegal LEFT-JOIN pushdown is visible as a
        // Filtered node below the null-padded side.
        let bug = BugId::DuckdbPushdownLeftJoin;
        let cfg = CampaignConfig {
            bugs: BugRegistry::only(bug),
            tests: 40,
            stop_on_first_bug: true,
            ..CampaignConfig::new(bug.dialect())
        };
        let mut oracle = make_oracle("verify").unwrap();
        let mut result = run_campaign(oracle.as_mut(), &cfg);
        assert!(!result.findings.is_empty(), "verify never caught {bug:?}");
        attribute_bugs(&mut result, &cfg, "verify");
        assert!(
            result.unique_attributed_bugs().contains(&bug),
            "attribution failed: {:#?}",
            result.findings
        );

        // Index family: seek-bound tightening and wrong sort-elimination
        // direction are visible in the seek node itself.
        for bug in [
            IndexBugId::RangeBoundOffByOne,
            IndexBugId::SortElimWrongDirection,
        ] {
            let cfg = CampaignConfig {
                bugs: BugRegistry::only_index(bug),
                tests: 40,
                stop_on_first_bug: true,
                ..CampaignConfig::new(Dialect::Sqlite)
            };
            let mut oracle = make_oracle("verify").unwrap();
            let mut result = run_campaign(oracle.as_mut(), &cfg);
            assert!(!result.findings.is_empty(), "verify never caught {bug:?}");
            attribute_bugs_parallel(&mut result, &cfg, "verify", 2);
            assert!(
                result
                    .findings
                    .iter()
                    .any(|f| f.attributed_index.contains(&bug)),
                "no finding attributed to {bug:?}: {:#?}",
                result.findings
            );
        }

        // A clean engine sails through a verify campaign finding nothing.
        let cfg = CampaignConfig {
            tests: 60,
            ..CampaignConfig::new(Dialect::Sqlite)
        };
        let mut oracle = make_oracle("verify").unwrap();
        let result = run_campaign(oracle.as_mut(), &cfg);
        assert!(result.findings.is_empty(), "{:#?}", result.findings);
        assert_eq!(result.tests_run, 60);
    }

    #[test]
    fn parallel_attribution_matches_sequential() {
        let cfg = CampaignConfig {
            bugs: BugRegistry::all_for_dialect(Dialect::Tidb),
            tests: 400,
            ..CampaignConfig::new(Dialect::Tidb)
        };
        let mut oracle = make_oracle("codd").unwrap();
        let mut seq = run_campaign(oracle.as_mut(), &cfg);
        let mut par = seq.clone();
        assert!(!seq.findings.is_empty());
        attribute_bugs(&mut seq, &cfg, "codd");
        attribute_bugs_parallel(&mut par, &cfg, "codd", 4);
        let seq_attr: Vec<_> = seq.findings.iter().map(|f| &f.attributed).collect();
        let par_attr: Vec<_> = par.findings.iter().map(|f| &f.attributed).collect();
        assert_eq!(seq_attr, par_attr);
    }
}
