//! The CODDTest oracle (the paper's contribution, Algorithm 1).
//!
//! One test of the predicate mode:
//!
//! 1. generate a FROM context and a random expression φ over its columns
//!    (step ②),
//! 2. **constant-fold** φ through an *auxiliary query* — `SELECT φ` for
//!    independent expressions, `SELECT {cᵢ}, φ FROM ...` (same joins) for
//!    dependent ones (step ③),
//! 3. build the *original query* `O` placing φ inside a predicate of a
//!    WHERE / JOIN ON / GROUP BY / HAVING clause or a DML statement
//!    (step ④),
//! 4. **constant-propagate**: `F = O[φ/Rφ]`, where `Rφ` is a literal, an
//!    IN value list, a `VALUES` list, or a per-row `CASE` mapping
//!    (step ⑤),
//! 5. any discrepancy between `E(O)` and `E(F)` is a bug.
//!
//! The relation mode implements §3.4: a non-correlated subquery used as a
//! relation (INSERT target table, derived table, or CTE) is folded into a
//! table value constructor.

use coddb::ast::{
    BinaryOp, Cte, Expr, InsertSource, JoinKind, Quantifier, Select, SelectBody, SelectCore,
    SelectItem, Statement, TableExpr,
};
use coddb::value::{DataType, Relation, Value};
use coddb::Dialect;
use rand::RngExt;
use sqlgen::expr::{ExprGen, GeneratedExpr};
use sqlgen::query::{build_random_query, gen_from_context, FromContext};
use sqlgen::{GenConfig, SchemaInfo};

use crate::{error_outcome, BugReport, Oracle, ReportKind, Session, TestOutcome};

const ORACLE_NAME: &str = "codd";

/// Where the original query places the predicate containing φ (§3.3:
/// "the generated predicate can be used in any SQL statement where a
/// predicate is required").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Placement {
    Where,
    JoinOn,
    GroupBy,
    Having,
    Update,
    Delete,
}

/// Result of constant folding: replace `target` with `replacement` inside
/// the original query.
struct Fold {
    target: Expr,
    replacement: Expr,
    aux: Vec<(String, String)>,
}

/// The CODDTest oracle.
pub struct CoddTest {
    config: GenConfig,
    /// Probability of running a §3.4 relation-folding test instead of a
    /// predicate test.
    relation_prob: f64,
    /// Regenerate φ until it contains a subquery ("CODDTest & Subquery"
    /// configuration of Table 3).
    require_subquery: bool,
}

impl Default for CoddTest {
    fn default() -> Self {
        CoddTest {
            config: GenConfig::default(),
            relation_prob: 0.2,
            require_subquery: false,
        }
    }
}

impl CoddTest {
    /// "CODDTest & Expression": expressions without subqueries (Table 3).
    pub fn expressions_only() -> Self {
        CoddTest {
            config: GenConfig::expressions_only(),
            relation_prob: 0.0,
            require_subquery: false,
        }
    }

    /// "CODDTest & Subquery": only subquery-bearing expressions (Table 3).
    pub fn subqueries_only() -> Self {
        CoddTest {
            config: GenConfig::default(),
            relation_prob: 0.25,
            require_subquery: true,
        }
    }

    /// Custom generator configuration (Figures 2/3 MaxDepth sweeps).
    pub fn with_config(config: GenConfig) -> Self {
        let relation_prob = if config.allow_subqueries { 0.2 } else { 0.0 };
        CoddTest {
            config,
            relation_prob,
            require_subquery: false,
        }
    }

    // -- folding (step ③) -------------------------------------------------

    /// Choose what to fold and do it: either the whole φ, or — preferred
    /// when present — a non-correlated subquery node *inside* φ (the
    /// paper's primary fold target; "non-correlated subqueries were our
    /// initial test focus", §4.1).
    fn fold(
        &self,
        s: &mut Session,
        phi: &GeneratedExpr,
        aux_from: Option<&TableExpr>,
        scope_aliases: &[String],
        dialect: Dialect,
        rng: &mut dyn rand::Rng,
    ) -> Result<Fold, TestOutcome> {
        let candidates = noncorrelated_subquery_nodes(&phi.expr, scope_aliases);
        let node_prob = if phi.is_independent() { 0.5 } else { 0.7 };
        if !candidates.is_empty() && rng.random_bool(node_prob) {
            let node = candidates[rng.random_range(0..candidates.len())].clone();
            return self.fold_expr_node(s, &node, dialect);
        }
        if phi.is_independent() {
            self.fold_expr_node(s, &phi.expr, dialect)
        } else {
            self.fold_dependent(s, phi, aux_from.expect("dependent φ requires a FROM"))
        }
    }

    /// Fold one independent expression node to a constant or constant
    /// list (§3.1). Non-correlated subqueries are extracted and executed
    /// directly ("the SELECT keyword can be omitted").
    fn fold_expr_node(
        &self,
        s: &mut Session,
        node: &Expr,
        dialect: Dialect,
    ) -> Result<Fold, TestOutcome> {
        let target = node.clone();
        match node {
            Expr::InSubquery {
                expr,
                query,
                negated,
            } => {
                let aux_sql = query.to_string();
                let rel = run_query(s, query, "auxiliary", &aux_sql)?;
                let replacement = if rel.rows.is_empty() {
                    // `x IN (∅)` is FALSE; `x NOT IN (∅)` is TRUE.
                    bool_literal(*negated, dialect)
                } else {
                    Expr::InList {
                        expr: expr.clone(),
                        list: rel
                            .rows
                            .iter()
                            .map(|r| Expr::Literal(r[0].clone()))
                            .collect(),
                        negated: *negated,
                    }
                };
                Ok(Fold {
                    target,
                    replacement,
                    aux: vec![("auxiliary".into(), aux_sql)],
                })
            }
            Expr::Quantified {
                op,
                quantifier,
                expr,
                query,
            } => {
                let aux_sql = query.to_string();
                let rel = run_query(s, query, "auxiliary", &aux_sql)?;
                let replacement = if rel.rows.is_empty() {
                    // ANY over ∅ is FALSE, ALL over ∅ is TRUE.
                    bool_literal(*quantifier == Quantifier::All, dialect)
                } else {
                    // Fold the subquery into a table value constructor
                    // (flexible dialects would use the UNION encoding the
                    // paper describes; CoddDB accepts VALUES everywhere).
                    let rows: Vec<Vec<Expr>> = rel
                        .rows
                        .iter()
                        .map(|r| vec![Expr::Literal(r[0].clone())])
                        .collect();
                    Expr::Quantified {
                        op: *op,
                        quantifier: *quantifier,
                        expr: expr.clone(),
                        query: Box::new(Select {
                            with: Vec::new(),
                            body: SelectBody::Values(rows),
                            order_by: Vec::new(),
                            limit: None,
                            offset: None,
                        }),
                    }
                };
                Ok(Fold {
                    target,
                    replacement,
                    aux: vec![("auxiliary".into(), aux_sql)],
                })
            }
            Expr::Exists { query, negated } => {
                let aux_sql = query.to_string();
                let rel = run_query(s, query, "auxiliary", &aux_sql)?;
                let exists = !rel.rows.is_empty();
                Ok(Fold {
                    target,
                    replacement: bool_literal(exists != *negated, dialect),
                    aux: vec![("auxiliary".into(), aux_sql)],
                })
            }
            Expr::Scalar(query) => {
                let aux_sql = query.to_string();
                let rel = run_query(s, query, "auxiliary", &aux_sql)?;
                let value = match rel.scalar() {
                    Some(v) => v.clone(),
                    None if rel.rows.is_empty() => Value::Null,
                    None => {
                        return Err(TestOutcome::Skipped("auxiliary subquery not scalar".into()))
                    }
                };
                Ok(Fold {
                    target,
                    replacement: Expr::Literal(value),
                    aux: vec![("auxiliary".into(), aux_sql)],
                })
            }
            other => {
                // Plain independent expression: `SELECT φ` (Algorithm 1,
                // line 4).
                let aux = Select::scalar_probe(other.clone());
                let aux_sql = aux.to_string();
                let rel = run_query(s, &aux, "auxiliary", &aux_sql)?;
                let value = rel
                    .scalar()
                    .cloned()
                    .ok_or_else(|| TestOutcome::Skipped("auxiliary not scalar".into()))?;
                Ok(Fold {
                    target,
                    replacement: Expr::Literal(value),
                    aux: vec![("auxiliary".into(), aux_sql)],
                })
            }
        }
    }

    /// Dependent expressions fold to a per-row mapping rendered as a CASE
    /// expression keyed by `{cᵢ}` (§3.2). The auxiliary query replicates
    /// the original query's FROM clause (same joins).
    fn fold_dependent(
        &self,
        s: &mut Session,
        phi: &GeneratedExpr,
        aux_from: &TableExpr,
    ) -> Result<Fold, TestOutcome> {
        let mut items: Vec<SelectItem> = phi
            .refs
            .iter()
            .map(|c| SelectItem::Expr {
                expr: Expr::col(c.table.clone(), c.column.clone()),
                alias: None,
            })
            .collect();
        items.push(SelectItem::Expr {
            expr: phi.expr.clone(),
            alias: None,
        });
        let aux = Select::from_core(SelectCore {
            items,
            from: Some(aux_from.clone()),
            ..SelectCore::default()
        });
        let aux_sql = aux.to_string();
        let rel = run_query(s, &aux, "auxiliary", &aux_sql)?;
        if rel.rows.is_empty() {
            // E.g. an INNER JOIN with an always-false condition; the paper
            // discards such tests (§3.2).
            return Err(TestOutcome::Skipped("empty auxiliary result".into()));
        }
        if rel.rows.len() > 256 {
            return Err(TestOutcome::Skipped("auxiliary mapping too large".into()));
        }

        // Build the CASE mapping. `IS` gives null-safe key matching
        // (Listing 4: `CASE WHEN t1.c0 is NULL THEN 1 END`).
        let nkeys = phi.refs.len();
        let mut whens: Vec<(Expr, Expr)> = Vec::new();
        let mut seen: Vec<&[Value]> = Vec::new();
        for row in &rel.rows {
            let key = &row[..nkeys];
            if seen
                .iter()
                .any(|k| k.iter().zip(key.iter()).all(|(a, b)| a.is_identical(b)))
            {
                continue;
            }
            seen.push(key);
            let mut cond: Option<Expr> = None;
            for (c, v) in phi.refs.iter().zip(key.iter()) {
                let eq = Expr::bin(
                    BinaryOp::Is,
                    Expr::col(c.table.clone(), c.column.clone()),
                    Expr::Literal(v.clone()),
                );
                cond = Some(match cond {
                    None => eq,
                    Some(prev) => Expr::and(prev, eq),
                });
            }
            let result = Expr::Literal(row[nkeys].clone());
            whens.push((cond.expect("dependent φ has at least one key"), result));
        }

        Ok(Fold {
            target: phi.expr.clone(),
            replacement: Expr::Case {
                operand: None,
                whens,
                else_expr: None,
            },
            aux: vec![("auxiliary".into(), aux_sql)],
        })
    }

    // -- original-query construction (step ④) ------------------------------

    fn choose_placement(
        &self,
        rng: &mut dyn rand::Rng,
        from: &FromContext,
        phi: &GeneratedExpr,
        schema: &SchemaInfo,
    ) -> Placement {
        let mut options = vec![Placement::Where, Placement::Where, Placement::Where];
        if from.has_join {
            options.push(Placement::JoinOn);
            options.push(Placement::JoinOn);
        }
        options.push(Placement::GroupBy);
        if phi.is_independent() {
            options.push(Placement::Having);
        }
        if !from.has_join {
            let base_ok = schema
                .table(&from.relations[0].1)
                .map(|t| !t.is_view)
                .unwrap_or(false);
            if base_ok {
                options.push(Placement::Update);
                options.push(Placement::Delete);
            }
        }
        options[rng.random_range(0..options.len())]
    }

    /// Wrap φ into the predicate of the original query: either φ itself or
    /// a random composition (§3.3 "randomly generate predicates that
    /// contain or correspond to φ").
    fn compose_predicate(
        &self,
        rng: &mut dyn rand::Rng,
        phi: &Expr,
        from: &FromContext,
        schema: &SchemaInfo,
        dialect: Dialect,
    ) -> Expr {
        if rng.random_bool(0.7) {
            return phi.clone();
        }
        let cfg = GenConfig {
            allow_subqueries: false,
            max_depth: 1,
            ..self.config.clone()
        };
        let mut extra_gen = ExprGen::new(dialect, &cfg, schema, &from.scope);
        let extra = extra_gen.gen_predicate(rng, 1);
        match rng.random_range(0..3) {
            0 => Expr::and(phi.clone(), extra),
            1 => Expr::and(extra, phi.clone()),
            _ => Expr::or(phi.clone(), extra),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn predicate_test(
        &self,
        s: &mut Session,
        schema: &SchemaInfo,
        rng: &mut dyn rand::Rng,
    ) -> TestOutcome {
        let dialect = s.dialect();
        let from = gen_from_context(rng, schema, &self.config, dialect);

        // Step ②: generate φ.
        let mut gen = ExprGen::new(dialect, &self.config, schema, &from.scope);
        let mut phi = gen.gen_phi(rng);
        if self.require_subquery {
            for _ in 0..10 {
                if phi.expr.contains_subquery() {
                    break;
                }
                phi = gen.gen_phi(rng);
            }
            if !phi.expr.contains_subquery() {
                return TestOutcome::Skipped("no subquery generated".into());
            }
        }

        let placement = self.choose_placement(rng, &from, &phi, schema);

        // Step ③: constant folding. When φ is the JOIN ON predicate, the
        // auxiliary query must *not* replicate the join (§3.2): φ is
        // evaluated against the pre-join row pairs, i.e. a cross join.
        let aux_from = match placement {
            Placement::JoinOn => cross_version(&from.table_expr),
            _ => from.table_expr.clone(),
        };
        let aliases: Vec<String> = from
            .relations
            .iter()
            .map(|(a, _)| a.to_ascii_lowercase())
            .collect();
        let fold = match self.fold(s, &phi, Some(&aux_from), &aliases, dialect, rng) {
            Ok(f) => f,
            Err(outcome) => return outcome,
        };

        // Step ④/⑤: build O, derive F, compare.
        match placement {
            Placement::Where => {
                let p = self.compose_predicate(rng, &phi.expr, &from, schema, dialect);
                let original = build_random_query(rng, &from, Some(p));
                self.check_select_pair(s, original, &fold)
            }
            Placement::JoinOn => {
                let p = self.compose_predicate(rng, &phi.expr, &from, schema, dialect);
                let TableExpr::Join {
                    left, right, kind, ..
                } = from.table_expr.clone()
                else {
                    return TestOutcome::Skipped("join placement without join".into());
                };
                // CROSS JOIN takes the predicate as an INNER ON (SQLite
                // accepts this; Listing 8 uses it).
                let kind = if kind == JoinKind::Cross {
                    JoinKind::Inner
                } else {
                    kind
                };
                let joined = FromContext {
                    table_expr: TableExpr::Join {
                        left,
                        right,
                        kind,
                        on: Some(p),
                    },
                    ..from.clone()
                };
                let original = build_random_query(rng, &joined, None);
                self.check_select_pair(s, original, &fold)
            }
            Placement::GroupBy => {
                // Group by the folded expression itself when it is a
                // scalar subquery (its *value* is then the group key), and
                // project the key alongside COUNT(*): value-level
                // corruption — e.g. precision bugs in nested aggregates —
                // surfaces directly in the result rows.
                let key = if matches!(fold.target, Expr::Scalar(_)) {
                    fold.target.clone()
                } else {
                    phi.expr.clone()
                };
                let original = Select::from_core(SelectCore {
                    // Occasionally DISTINCT — DISTINCT + GROUP BY is a bug
                    // class of its own (DuckDB, Table 1).
                    distinct: rng.random_bool(0.3),
                    items: vec![
                        SelectItem::Expr {
                            expr: key.clone(),
                            alias: Some("k".into()),
                        },
                        SelectItem::Expr {
                            expr: Expr::count_star(),
                            alias: None,
                        },
                    ],
                    from: Some(from.table_expr.clone()),
                    group_by: vec![key],
                    ..SelectCore::default()
                });
                self.check_select_pair(s, original, &fold)
            }
            Placement::Having => {
                let key = &from.scope[rng.random_range(0..from.scope.len())];
                let original = Select::from_core(SelectCore {
                    items: vec![SelectItem::Expr {
                        expr: Expr::count_star(),
                        alias: None,
                    }],
                    from: Some(from.table_expr.clone()),
                    group_by: vec![Expr::col(key.table.clone(), key.column.clone())],
                    having: Some(phi.expr.clone()),
                    ..SelectCore::default()
                });
                self.check_select_pair(s, original, &fold)
            }
            Placement::Update | Placement::Delete => {
                self.check_dml_pair(s, &from, placement, &phi.expr, &fold, schema)
            }
        }
    }

    /// Execute original and folded SELECTs and compare result multisets.
    fn check_select_pair(&self, s: &mut Session, original: Select, fold: &Fold) -> TestOutcome {
        let mut folded = original.clone();
        let replaced =
            coddb::ast::visit::replace_in_select(&mut folded, &fold.target, &fold.replacement);
        if replaced == 0 {
            return TestOutcome::Skipped("φ not found in original query".into());
        }
        let o_sql = original.to_string();
        let f_sql = folded.to_string();
        let mut case = fold.aux.clone();
        case.insert(0, ("original".into(), o_sql.clone()));
        case.push(("folded".into(), f_sql.clone()));

        let o_rel = match s.query(&original) {
            Ok(r) => r,
            Err(e) => return error_outcome(ORACLE_NAME, &e, case),
        };
        let f_rel = match s.query(&folded) {
            Ok(r) => r,
            Err(e) => return error_outcome(ORACLE_NAME, &e, case),
        };
        if o_rel.multiset_eq(&f_rel) {
            TestOutcome::Pass
        } else {
            TestOutcome::Bug(BugReport {
                oracle: ORACLE_NAME,
                kind: ReportKind::LogicDiscrepancy,
                queries: case,
                detail: format!(
                    "original returned {} row(s), folded returned {} row(s):\nO: {}\nF: {}",
                    o_rel.row_count(),
                    f_rel.row_count(),
                    o_rel.to_table_string(),
                    f_rel.to_table_string()
                ),
            })
        }
    }

    /// §3.3: predicates can be placed in UPDATE/DELETE; compare affected
    /// row counts of the original and folded statements on identical
    /// snapshots.
    fn check_dml_pair(
        &self,
        s: &mut Session,
        from: &FromContext,
        placement: Placement,
        phi: &Expr,
        fold: &Fold,
        schema: &SchemaInfo,
    ) -> TestOutcome {
        let table = from.relations[0].1.clone();
        let first_col = schema
            .table(&table)
            .and_then(|t| t.columns.first().map(|(c, _)| c.clone()))
            .unwrap_or_else(|| "c0".into());

        let build = |pred: Expr| -> Statement {
            match placement {
                Placement::Update => Statement::Update {
                    table: table.clone(),
                    sets: vec![(first_col.clone(), Expr::bare_col(first_col.clone()))],
                    where_clause: Some(pred),
                },
                _ => Statement::Delete {
                    table: table.clone(),
                    where_clause: Some(pred),
                },
            }
        };
        let original = build(phi.clone());
        let mut folded = original.clone();
        let replaced =
            coddb::ast::visit::replace_in_statement(&mut folded, &fold.target, &fold.replacement);
        if replaced == 0 {
            return TestOutcome::Skipped("φ not found in DML statement".into());
        }

        let mut case = fold.aux.clone();
        case.insert(0, ("original".into(), original.to_string()));
        case.push(("folded".into(), folded.to_string()));

        let snapshot = s.db.snapshot();
        let o_res = s.execute(&original);
        s.db.restore(snapshot.clone());
        let o_n = match o_res {
            Ok(out) => out.affected().unwrap_or(0),
            Err(e) => return error_outcome(ORACLE_NAME, &e, case),
        };
        let f_res = s.execute(&folded);
        s.db.restore(snapshot);
        let f_n = match f_res {
            Ok(out) => out.affected().unwrap_or(0),
            Err(e) => return error_outcome(ORACLE_NAME, &e, case),
        };
        if o_n == f_n {
            TestOutcome::Pass
        } else {
            TestOutcome::Bug(BugReport {
                oracle: ORACLE_NAME,
                kind: ReportKind::LogicDiscrepancy,
                queries: case,
                detail: format!("original affected {o_n} row(s), folded affected {f_n}"),
            })
        }
    }

    // -- relation folding (§3.4) -------------------------------------------

    fn relation_test(
        &self,
        s: &mut Session,
        schema: &SchemaInfo,
        rng: &mut dyn rand::Rng,
    ) -> TestOutcome {
        let dialect = s.dialect();
        let bases = schema.base_tables();
        if bases.is_empty() {
            return TestOutcome::Skipped("no base table".into());
        }
        let base = bases[rng.random_range(0..bases.len())].clone();

        // A non-correlated subquery whose rows feed the relation. With
        // some probability use the Listing-6 shape (VERSION() predicate).
        let scope = base.columns_as(&base.name);
        let inner_pred = if rng.random_bool(0.25) {
            scope
                .iter()
                .find(|c| matches!(c.ty, DataType::Int | DataType::Real | DataType::Any))
                .map(|c| {
                    Expr::bin(
                        BinaryOp::Ge,
                        Expr::Func {
                            func: coddb::ast::FuncName::Version,
                            args: vec![],
                        },
                        Expr::col(c.table.clone(), c.column.clone()),
                    )
                })
        } else if rng.random_bool(0.6) {
            let cfg = GenConfig {
                allow_subqueries: false,
                ..self.config.clone()
            };
            let mut gen = ExprGen::new(dialect, &cfg, schema, &scope);
            Some(gen.gen_predicate(rng, 2))
        } else {
            None
        };
        let items: Vec<SelectItem> = base
            .columns
            .iter()
            .enumerate()
            .map(|(i, (c, _))| SelectItem::Expr {
                expr: Expr::col(base.name.clone(), c.clone()),
                alias: Some(format!("c{i}")),
            })
            .collect();
        let subquery = Select::from_core(SelectCore {
            items,
            from: Some(TableExpr::named(base.name.clone())),
            where_clause: inner_pred,
            ..SelectCore::default()
        });

        // Materialize (this is the constant folding of the relation).
        let sub_sql = subquery.to_string();
        let rel = match run_query(s, &subquery, "subquery", &sub_sql) {
            Ok(r) => r,
            Err(outcome) => return outcome,
        };
        if rel.rows.is_empty() {
            return TestOutcome::Skipped("subquery returned no rows (§3.4 needs non-empty)".into());
        }
        let mut types = rel.column_types();
        for t in &mut types {
            if *t == DataType::Any && !dialect.allows_untyped_columns() {
                *t = DataType::Int; // all-NULL column: any type stores NULL
            }
        }
        let columns: Vec<String> = (0..rel.columns.len()).map(|i| format!("c{i}")).collect();

        // The outer query: projection of all relation columns plus an
        // optional predicate over them (identical in O and F).
        let rel_scope: Vec<sqlgen::ColumnInfo> = columns
            .iter()
            .zip(types.iter())
            .map(|(c, ty)| sqlgen::ColumnInfo {
                table: "rel0".into(),
                column: c.clone(),
                ty: *ty,
            })
            .collect();
        let outer_pred = if rng.random_bool(0.5) {
            let cfg = GenConfig {
                allow_subqueries: false,
                ..self.config.clone()
            };
            let mut gen = ExprGen::new(dialect, &cfg, schema, &rel_scope);
            let p = gen.gen_predicate(rng, 2);
            // Sometimes wrap in the Listing-7 shape: a searched CASE with
            // a literal-NULL condition reading the relation's columns.
            if rng.random_bool(0.3) {
                let other = gen.gen_predicate(rng, 1);
                Some(Expr::Case {
                    operand: None,
                    whens: vec![(Expr::null(), other)],
                    else_expr: Some(Box::new(p)),
                })
            } else {
                Some(p)
            }
        } else {
            None
        };

        let o_mode = rng.random_range(0..3);
        let f_mode = rng.random_range(0..3);
        // Occasionally reference the relation twice in one FROM (a
        // self-cross-join); applied to both sides so results stay
        // equivalent. Exercises repeated CTE materialization.
        let self_join = rel.rows.len() <= 8 && rng.random_bool(0.2);

        let values_rows: Vec<Vec<Expr>> = rel
            .rows
            .iter()
            .map(|r| r.iter().map(|v| Expr::Literal(v.clone())).collect())
            .collect();

        let result = self.run_relation_side(
            s,
            o_mode,
            "ot0",
            &columns,
            &types,
            RelationSource::Query(&subquery),
            &outer_pred,
            self_join,
        );
        let o_rel = match result {
            Ok(r) => r,
            Err(outcome) => return outcome,
        };
        let result = self.run_relation_side(
            s,
            f_mode,
            "ft0",
            &columns,
            &types,
            RelationSource::Values(&values_rows),
            &outer_pred,
            self_join,
        );
        let f_rel = match result {
            Ok(r) => r,
            Err(outcome) => return outcome,
        };

        if o_rel.multiset_eq(&f_rel) {
            TestOutcome::Pass
        } else {
            TestOutcome::Bug(BugReport {
                oracle: ORACLE_NAME,
                kind: ReportKind::LogicDiscrepancy,
                queries: vec![
                    ("subquery".into(), sub_sql),
                    ("original-relation-mode".into(), mode_name(o_mode).into()),
                    ("folded-relation-mode".into(), mode_name(f_mode).into()),
                    (
                        "outer-predicate".into(),
                        outer_pred
                            .map(|p| p.to_string())
                            .unwrap_or_else(|| "<none>".into()),
                    ),
                ],
                detail: format!(
                    "original relation returned {} row(s), folded returned {}:\nO: {}\nF: {}",
                    o_rel.row_count(),
                    f_rel.row_count(),
                    o_rel.to_table_string(),
                    f_rel.to_table_string()
                ),
            })
        }
    }

    /// Build and query one side of a relation test: a real table filled by
    /// INSERT, a derived table, or a CTE. With `self_join`, the relation
    /// is read twice (`rel AS ra CROSS JOIN rel AS rb`) and projected from
    /// the first alias — semantically the relation repeated |rel| times.
    #[allow(clippy::too_many_arguments)]
    fn run_relation_side(
        &self,
        s: &mut Session,
        mode: usize,
        name: &str,
        columns: &[String],
        types: &[DataType],
        source: RelationSource,
        outer_pred: &Option<Expr>,
        self_join: bool,
    ) -> Result<Relation, TestOutcome> {
        let proj_alias = if self_join { "ra" } else { name };
        let items: Vec<SelectItem> = columns
            .iter()
            .map(|c| SelectItem::Expr {
                expr: Expr::col(proj_alias, c.clone()),
                alias: None,
            })
            .collect();
        // Requalify the outer predicate for this side's projection alias.
        let pred = outer_pred
            .as_ref()
            .map(|p| requalify(p.clone(), proj_alias));
        let from_of = |name: &str| -> TableExpr {
            if self_join {
                TableExpr::Join {
                    left: Box::new(TableExpr::aliased(name, "ra")),
                    right: Box::new(TableExpr::aliased(name, "rb")),
                    kind: JoinKind::Cross,
                    on: None,
                }
            } else {
                TableExpr::named(name)
            }
        };

        match mode {
            0 => {
                // Table mode: CREATE TABLE + INSERT + SELECT + DROP. The
                // paper notes the extra statements (and, for subquery
                // sources, a type-probing query) raise CODDTest's QPT.
                let defs: Vec<coddb::ast::ColumnDef> = columns
                    .iter()
                    .zip(types.iter())
                    .map(|(c, ty)| coddb::ast::ColumnDef {
                        name: c.clone(),
                        ty: *ty,
                        not_null: false,
                    })
                    .collect();
                let create = Statement::CreateTable {
                    name: name.into(),
                    columns: defs,
                    if_not_exists: false,
                };
                let insert = Statement::Insert {
                    table: name.into(),
                    columns: Vec::new(),
                    source: match &source {
                        RelationSource::Query(q) => InsertSource::Query((*q).clone()),
                        RelationSource::Values(rows) => InsertSource::Values((*rows).to_vec()),
                    },
                };
                let select = Select::from_core(SelectCore {
                    items,
                    from: Some(from_of(name)),
                    where_clause: pred,
                    ..SelectCore::default()
                });
                let drop = Statement::DropTable {
                    name: name.into(),
                    if_exists: true,
                };
                let run = |s: &mut Session| -> coddb::Result<Relation> {
                    s.execute(&create)?;
                    s.execute(&insert)?;
                    let rel = s.query(&select)?;
                    Ok(rel)
                };
                let result = run(s);
                // Always restore the state (paper: "additional statements
                // ... to create and drop tables to maintain the database
                // state").
                let _ = s.execute(&drop);
                result.map_err(|e| {
                    error_outcome(
                        ORACLE_NAME,
                        &e,
                        vec![("relation-table".into(), format!("{create}; {insert}"))],
                    )
                })
            }
            1 => {
                // Derived-table mode.
                let from = match &source {
                    RelationSource::Query(q) => TableExpr::Derived {
                        query: Box::new((*q).clone()),
                        alias: name.into(),
                    },
                    RelationSource::Values(rows) => TableExpr::Values {
                        rows: (*rows).to_vec(),
                        alias: name.into(),
                        columns: columns.to_vec(),
                    },
                };
                // A derived SELECT's output columns are already c0..cn
                // (aliased in the subquery); VALUES uses the column list.
                let select = Select::from_core(SelectCore {
                    items,
                    from: Some(from),
                    where_clause: pred,
                    ..SelectCore::default()
                });
                let sql = select.to_string();
                run_query(s, &select, "derived", &sql)
            }
            _ => {
                // CTE mode.
                let cte_query = match &source {
                    RelationSource::Query(q) => (*q).clone(),
                    RelationSource::Values(rows) => Select {
                        with: Vec::new(),
                        body: SelectBody::Values((*rows).to_vec()),
                        order_by: Vec::new(),
                        limit: None,
                        offset: None,
                    },
                };
                let select = Select {
                    with: vec![Cte {
                        name: name.into(),
                        columns: columns.to_vec(),
                        query: cte_query,
                    }],
                    body: SelectBody::Core(SelectCore {
                        items,
                        from: Some(from_of(name)),
                        where_clause: pred,
                        ..SelectCore::default()
                    }),
                    order_by: Vec::new(),
                    limit: None,
                    offset: None,
                };
                let sql = select.to_string();
                run_query(s, &select, "cte", &sql)
            }
        }
    }
}

enum RelationSource<'a> {
    Query(&'a Select),
    Values(&'a [Vec<Expr>]),
}

fn mode_name(mode: usize) -> &'static str {
    match mode {
        0 => "table (CREATE + INSERT)",
        1 => "derived table",
        _ => "common table expression",
    }
}

/// Requalify every column reference in an outer predicate to `alias`.
fn requalify(mut p: Expr, alias: &str) -> Expr {
    fn rec(e: &mut Expr, alias: &str) {
        if let Expr::Column(c) = e {
            c.table = Some(alias.to_string());
            return;
        }
        // Immediate children only — relation-mode predicates are generated
        // without subqueries.
        match e {
            Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::IsNull { expr, .. } => {
                rec(expr, alias)
            }
            Expr::Binary { left, right, .. } => {
                rec(left, alias);
                rec(right, alias);
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                rec(expr, alias);
                rec(low, alias);
                rec(high, alias);
            }
            Expr::InList { expr, list, .. } => {
                rec(expr, alias);
                for i in list {
                    rec(i, alias);
                }
            }
            Expr::Case {
                operand,
                whens,
                else_expr,
            } => {
                if let Some(o) = operand {
                    rec(o, alias);
                }
                for (w, t) in whens {
                    rec(w, alias);
                    rec(t, alias);
                }
                if let Some(e2) = else_expr {
                    rec(e2, alias);
                }
            }
            Expr::Func { args, .. } => {
                for a in args {
                    rec(a, alias);
                }
            }
            Expr::Like { expr, pattern, .. } => {
                rec(expr, alias);
                rec(pattern, alias);
            }
            _ => {}
        }
    }
    rec(&mut p, alias);
    p
}

/// Collect the subquery-bearing nodes of φ whose inner query does not
/// reference the outer scope (fold candidates per §3.1: "the expression φ
/// can be a non-correlated subquery, which computes a constant result").
fn noncorrelated_subquery_nodes(phi: &Expr, scope_aliases: &[String]) -> Vec<Expr> {
    let mut out = Vec::new();
    coddb::ast::visit::walk_expr_shallow(phi, &mut |e| {
        let query = match e {
            Expr::Scalar(q) => Some(q),
            Expr::InSubquery { query, .. } => Some(query),
            Expr::Exists { query, .. } => Some(query),
            Expr::Quantified { query, .. } => Some(query),
            _ => None,
        };
        if let Some(q) = query {
            if !subquery_references_scope(q, scope_aliases) && !out.contains(e) {
                out.push(e.clone());
            }
        }
    });
    out
}

/// Does a subquery reference any column qualified by an outer-scope alias
/// (i.e. is it correlated)?
fn subquery_references_scope(q: &Select, scope_aliases: &[String]) -> bool {
    let mut found = false;
    coddb::ast::visit::walk_select_exprs(q, &mut |e| {
        if let Expr::Column(c) = e {
            if let Some(t) = &c.table {
                if scope_aliases.iter().any(|a| a.eq_ignore_ascii_case(t)) {
                    found = true;
                }
            }
        }
    });
    found
}

/// Replace the *top-level* join with a cross join (used for the auxiliary
/// query when φ is that join's predicate — §3.2: "the expression φ would
/// be evaluated with the row values before the JOIN operation"). Joins
/// below the top one stay intact: their outputs — including any
/// NULL-padded outer-join rows — are exactly the candidate rows φ sees.
fn cross_version(te: &TableExpr) -> TableExpr {
    match te {
        TableExpr::Join { left, right, .. } => TableExpr::Join {
            left: left.clone(),
            right: right.clone(),
            kind: JoinKind::Cross,
            on: None,
        },
        other => other.clone(),
    }
}

fn bool_literal(b: bool, dialect: Dialect) -> Expr {
    if dialect.strict_types() {
        Expr::lit(b)
    } else {
        Expr::lit(b as i64)
    }
}

/// Run a query, mapping errors into test outcomes.
fn run_query(s: &mut Session, q: &Select, label: &str, sql: &str) -> Result<Relation, TestOutcome> {
    s.query(q)
        .map_err(|e| error_outcome(ORACLE_NAME, &e, vec![(label.to_string(), sql.to_string())]))
}

impl Oracle for CoddTest {
    fn name(&self) -> &'static str {
        if self.require_subquery {
            "codd-subquery"
        } else if !self.config.allow_subqueries {
            "codd-expression"
        } else {
            ORACLE_NAME
        }
    }

    fn run_one(
        &mut self,
        session: &mut Session,
        schema: &SchemaInfo,
        rng: &mut dyn rand::Rng,
    ) -> TestOutcome {
        let relation_mode = self.relation_prob > 0.0 && rng.random_bool(self.relation_prob);
        if relation_mode {
            self.relation_test(session, schema, rng)
        } else {
            self.predicate_test(session, schema, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coddb::Database;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sqlgen::state::generate_state;

    /// Run `n` CODDTest tests on a clean engine; there must be no false
    /// alarms (the paper reports zero after the float/typing mitigations).
    fn assert_no_false_alarms(dialect: Dialect, oracle: &mut CoddTest, n: u64) {
        let mut states = 0;
        let mut tests = 0u64;
        let mut state_seed = 0u64;
        while tests < n {
            let mut rng = StdRng::seed_from_u64(9000 + state_seed);
            state_seed += 1;
            states += 1;
            let (stmts, schema) = generate_state(&mut rng, dialect, &GenConfig::default());
            let mut db = Database::new(dialect);
            for st in &stmts {
                db.execute(st).unwrap();
            }
            let mut session = Session::new(&mut db);
            for _ in 0..16 {
                tests += 1;
                let outcome = oracle.run_one(&mut session, &schema, &mut rng);
                if let TestOutcome::Bug(report) = outcome {
                    panic!(
                        "false alarm on clean {dialect} engine (state {states}):\n{}",
                        report.to_display()
                    );
                }
                if tests >= n {
                    break;
                }
            }
        }
    }

    #[test]
    fn no_false_alarms_on_clean_sqlite() {
        assert_no_false_alarms(Dialect::Sqlite, &mut CoddTest::default(), 400);
    }

    #[test]
    fn no_false_alarms_on_clean_strict_dialects() {
        assert_no_false_alarms(Dialect::Cockroach, &mut CoddTest::default(), 250);
        assert_no_false_alarms(Dialect::Duckdb, &mut CoddTest::default(), 250);
    }

    #[test]
    fn no_false_alarms_on_clean_mysql_tidb() {
        assert_no_false_alarms(Dialect::Mysql, &mut CoddTest::default(), 250);
        assert_no_false_alarms(Dialect::Tidb, &mut CoddTest::default(), 250);
    }

    #[test]
    fn no_false_alarms_expression_and_subquery_configs() {
        assert_no_false_alarms(Dialect::Sqlite, &mut CoddTest::expressions_only(), 250);
        assert_no_false_alarms(Dialect::Sqlite, &mut CoddTest::subqueries_only(), 250);
    }

    #[test]
    fn cross_version_strips_join_kind_and_on() {
        let join = TableExpr::Join {
            left: Box::new(TableExpr::named("a")),
            right: Box::new(TableExpr::named("b")),
            kind: JoinKind::Left,
            on: Some(Expr::lit(true)),
        };
        match cross_version(&join) {
            TableExpr::Join {
                kind: JoinKind::Cross,
                on: None,
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn requalify_rewrites_all_references() {
        let p = Expr::and(
            Expr::bin(BinaryOp::Gt, Expr::col("rel0", "c0"), Expr::lit(1i64)),
            Expr::is_null(Expr::col("rel0", "c1")),
        );
        let q = requalify(p, "ft0");
        let mut tables = Vec::new();
        coddb::ast::visit::walk_expr_shallow(&q, &mut |e| {
            if let Expr::Column(c) = e {
                tables.push(c.table.clone());
            }
        });
        assert!(tables.iter().all(|t| t.as_deref() == Some("ft0")));
    }
}
