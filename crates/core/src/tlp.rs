//! TLP baseline — Ternary Logic Partitioning (Rigger & Su, OOPSLA 2020).
//!
//! For any row exactly one of `p`, `NOT p`, `p IS NULL` is TRUE, so a
//! query without the predicate must equal the multiset union of the three
//! partitioning queries. Beyond the WHERE mode, TLP tests aggregates
//! (`COUNT`/`SUM`/`MIN`/`MAX`), `DISTINCT` and `HAVING` — the scope the
//! CODDTest paper credits it with. Like NoREC, it has no subquery support.

use coddb::ast::{AggFunc, Expr, Select, SelectBody, SelectCore, SelectItem, SetOp, TableExpr};
use coddb::value::{Relation, Row, Value};
use rand::RngExt;
use sqlgen::expr::ExprGen;
use sqlgen::query::{gen_from_context, FromContext};
use sqlgen::{GenConfig, SchemaInfo};

use crate::{error_outcome, BugReport, Oracle, ReportKind, Session, TestOutcome};

const ORACLE_NAME: &str = "tlp";

/// The TLP oracle.
pub struct Tlp {
    config: GenConfig,
}

impl Default for Tlp {
    fn default() -> Self {
        Tlp {
            config: GenConfig::expressions_only(),
        }
    }
}

/// The three partitioning predicates.
fn partitions(p: &Expr) -> [Expr; 3] {
    [
        p.clone(),
        Expr::not(p.clone()),
        Expr::IsNull {
            expr: Box::new(p.clone()),
            negated: false,
        },
    ]
}

impl Tlp {
    fn where_mode(
        &self,
        s: &mut Session,
        from: &FromContext,
        p: &Expr,
        rng: &mut dyn rand::Rng,
    ) -> TestOutcome {
        let items: Vec<SelectItem> = from
            .scope
            .iter()
            .map(|c| SelectItem::Expr {
                expr: Expr::col(c.table.clone(), c.column.clone()),
                alias: None,
            })
            .collect();
        let base = |w: Option<Expr>| {
            Select::from_core(SelectCore {
                items: items.clone(),
                from: Some(from.table_expr.clone()),
                where_clause: w,
                ..SelectCore::default()
            })
        };
        let all_query = base(None);
        let parts = partitions(p);

        let mut case = vec![("unpartitioned".into(), all_query.to_string())];
        let all_rel = match s.query(&all_query) {
            Ok(r) => r,
            Err(e) => return error_outcome(ORACLE_NAME, &e, case),
        };

        // Mostly run the partitions as one UNION ALL query, occasionally
        // as three separate queries — the paper measures TLP's QPT at
        // 2.23, i.e. the single-query mode dominates.
        let mut combined = Relation::new(all_rel.columns.clone());
        if rng.random_bool(0.85) {
            let union = Select {
                with: Vec::new(),
                body: SelectBody::SetOp {
                    op: SetOp::Union,
                    all: true,
                    left: Box::new(SelectBody::SetOp {
                        op: SetOp::Union,
                        all: true,
                        left: Box::new(core_of(base(Some(parts[0].clone())))),
                        right: Box::new(core_of(base(Some(parts[1].clone())))),
                    }),
                    right: Box::new(core_of(base(Some(parts[2].clone())))),
                },
                order_by: Vec::new(),
                limit: None,
                offset: None,
            };
            case.push(("partitions (UNION ALL)".into(), union.to_string()));
            match s.query(&union) {
                Ok(r) => combined.rows = r.rows,
                Err(e) => return error_outcome(ORACLE_NAME, &e, case),
            }
        } else {
            for (i, part) in parts.iter().enumerate() {
                let q = base(Some(part.clone()));
                case.push((format!("partition {i}"), q.to_string()));
                match s.query(&q) {
                    Ok(r) => combined.rows.extend(r.rows),
                    Err(e) => return error_outcome(ORACLE_NAME, &e, case),
                }
            }
        }

        if all_rel.multiset_eq(&combined) {
            TestOutcome::Pass
        } else {
            TestOutcome::Bug(BugReport {
                oracle: ORACLE_NAME,
                kind: ReportKind::LogicDiscrepancy,
                queries: case,
                detail: format!(
                    "unpartitioned {} row(s) != partitions {} row(s)",
                    all_rel.row_count(),
                    combined.row_count()
                ),
            })
        }
    }

    fn aggregate_mode(
        &self,
        s: &mut Session,
        from: &FromContext,
        p: &Expr,
        rng: &mut dyn rand::Rng,
    ) -> TestOutcome {
        // Pick an aggregate over a column (COUNT also works over any).
        let col = &from.scope[rng.random_range(0..from.scope.len())];
        let func =
            [AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max][rng.random_range(0..4)];
        if matches!(func, AggFunc::Sum)
            && !matches!(
                col.ty,
                coddb::DataType::Int | coddb::DataType::Real | coddb::DataType::Any
            )
        {
            return TestOutcome::Skipped("SUM needs a numeric column".into());
        }
        let agg = Expr::Agg {
            func,
            arg: Some(Box::new(Expr::col(col.table.clone(), col.column.clone()))),
            distinct: false,
        };
        let base = |w: Option<Expr>| {
            Select::from_core(SelectCore {
                items: vec![SelectItem::Expr {
                    expr: agg.clone(),
                    alias: None,
                }],
                from: Some(from.table_expr.clone()),
                where_clause: w,
                ..SelectCore::default()
            })
        };
        let whole = base(None);
        let mut case = vec![("whole aggregate".into(), whole.to_string())];
        let whole_v = match s.query(&whole) {
            Ok(r) => r.scalar().cloned().unwrap_or(Value::Null),
            Err(e) => return error_outcome(ORACLE_NAME, &e, case),
        };
        let mut parts_vals = Vec::new();
        for (i, part) in partitions(p).iter().enumerate() {
            let q = base(Some(part.clone()));
            case.push((format!("partition {i}"), q.to_string()));
            match s.query(&q) {
                Ok(r) => parts_vals.push(r.scalar().cloned().unwrap_or(Value::Null)),
                Err(e) => return error_outcome(ORACLE_NAME, &e, case),
            }
        }
        let combined = match func {
            AggFunc::Count => {
                let sum: i64 = parts_vals.iter().filter_map(|v| v.as_i64()).sum();
                Value::Int(sum)
            }
            AggFunc::Sum => {
                let nonnull: Vec<&Value> = parts_vals.iter().filter(|v| !v.is_null()).collect();
                if nonnull.is_empty() {
                    Value::Null
                } else if nonnull.iter().all(|v| matches!(v, Value::Int(_))) {
                    // Accumulate host-side in i128: if the combined sum
                    // exceeds i64, the whole-table SUM would have errored
                    // (and the test been skipped) anyway.
                    let total: i128 = nonnull
                        .iter()
                        .filter_map(|v| v.as_i64())
                        .map(i128::from)
                        .sum();
                    match i64::try_from(total) {
                        Ok(v) => Value::Int(v),
                        Err(_) => return TestOutcome::Skipped("partition SUM overflow".into()),
                    }
                } else {
                    Value::Real(nonnull.iter().filter_map(|v| v.as_f64()).sum())
                }
            }
            AggFunc::Min => parts_vals
                .iter()
                .filter(|v| !v.is_null())
                .cloned()
                .min_by(|a, b| a.total_cmp(b))
                .unwrap_or(Value::Null),
            _ => parts_vals
                .iter()
                .filter(|v| !v.is_null())
                .cloned()
                .max_by(|a, b| a.total_cmp(b))
                .unwrap_or(Value::Null),
        };
        let equal = match (&whole_v, &combined) {
            (Value::Real(a), Value::Real(b)) => (a - b).abs() <= 1e-9 * (1.0 + a.abs()),
            (a, b) => a.is_identical(b),
        };
        if equal {
            TestOutcome::Pass
        } else {
            TestOutcome::Bug(BugReport {
                oracle: ORACLE_NAME,
                kind: ReportKind::LogicDiscrepancy,
                queries: case,
                detail: format!("whole {whole_v:?} != combined partitions {combined:?}"),
            })
        }
    }

    fn distinct_mode(
        &self,
        s: &mut Session,
        from: &FromContext,
        p: &Expr,
        rng: &mut dyn rand::Rng,
    ) -> TestOutcome {
        let col = &from.scope[0];
        // Half the time also GROUP BY the projected column — the result
        // set is identical, but it exercises the DISTINCT + GROUP BY
        // machinery (a DuckDB bug class of Table 1).
        let with_group_by = rng.random_bool(0.5);
        let base = |w: Option<Expr>| {
            let key = Expr::col(col.table.clone(), col.column.clone());
            Select::from_core(SelectCore {
                distinct: true,
                items: vec![SelectItem::Expr {
                    expr: key.clone(),
                    alias: None,
                }],
                from: Some(from.table_expr.clone()),
                where_clause: w,
                group_by: if with_group_by { vec![key] } else { Vec::new() },
                ..SelectCore::default()
            })
        };
        let whole = base(None);
        let mut case = vec![("whole DISTINCT".into(), whole.to_string())];
        let whole_rel = match s.query(&whole) {
            Ok(r) => r,
            Err(e) => return error_outcome(ORACLE_NAME, &e, case),
        };
        // Set-union the partition results.
        let mut seen: Vec<Value> = Vec::new();
        for (i, part) in partitions(p).iter().enumerate() {
            let q = base(Some(part.clone()));
            case.push((format!("partition {i}"), q.to_string()));
            match s.query(&q) {
                Ok(r) => {
                    for row in r.rows {
                        if !seen.iter().any(|v| v.is_identical(&row[0])) {
                            seen.push(row[0].clone());
                        }
                    }
                }
                Err(e) => return error_outcome(ORACLE_NAME, &e, case),
            }
        }
        let combined = Relation {
            columns: whole_rel.columns.clone(),
            rows: seen.into_iter().map(|v| Row::new(vec![v])).collect(),
        };
        if whole_rel.multiset_eq(&combined) {
            TestOutcome::Pass
        } else {
            TestOutcome::Bug(BugReport {
                oracle: ORACLE_NAME,
                kind: ReportKind::LogicDiscrepancy,
                queries: case,
                detail: format!(
                    "whole DISTINCT {} value(s) != partition union {}",
                    whole_rel.row_count(),
                    combined.row_count()
                ),
            })
        }
    }

    fn having_mode(
        &self,
        s: &mut Session,
        from: &FromContext,
        rng: &mut dyn rand::Rng,
    ) -> TestOutcome {
        // HAVING partitions over an aggregate predicate.
        let key = &from.scope[rng.random_range(0..from.scope.len())];
        let key_expr = Expr::col(key.table.clone(), key.column.clone());
        let p = Expr::bin(
            [coddb::ast::BinaryOp::Gt, coddb::ast::BinaryOp::Le][rng.random_range(0..2)],
            Expr::count_star(),
            Expr::lit(rng.random_range(0i64..3)),
        );
        let base = |h: Option<Expr>| {
            Select::from_core(SelectCore {
                items: vec![SelectItem::Expr {
                    expr: key_expr.clone(),
                    alias: None,
                }],
                from: Some(from.table_expr.clone()),
                group_by: vec![key_expr.clone()],
                having: h,
                ..SelectCore::default()
            })
        };
        let whole = base(None);
        let mut case = vec![("all groups".into(), whole.to_string())];
        let whole_rel = match s.query(&whole) {
            Ok(r) => r,
            Err(e) => return error_outcome(ORACLE_NAME, &e, case),
        };
        let mut combined = Relation::new(whole_rel.columns.clone());
        for (i, part) in partitions(&p).iter().enumerate() {
            let q = base(Some(part.clone()));
            case.push((format!("HAVING partition {i}"), q.to_string()));
            match s.query(&q) {
                Ok(r) => combined.rows.extend(r.rows),
                Err(e) => return error_outcome(ORACLE_NAME, &e, case),
            }
        }
        if whole_rel.multiset_eq(&combined) {
            TestOutcome::Pass
        } else {
            TestOutcome::Bug(BugReport {
                oracle: ORACLE_NAME,
                kind: ReportKind::LogicDiscrepancy,
                queries: case,
                detail: format!(
                    "all groups {} != HAVING partitions {}",
                    whole_rel.row_count(),
                    combined.row_count()
                ),
            })
        }
    }
}

fn core_of(s: Select) -> SelectBody {
    s.body
}

impl Oracle for Tlp {
    fn name(&self) -> &'static str {
        ORACLE_NAME
    }

    fn run_one(
        &mut self,
        s: &mut Session,
        schema: &SchemaInfo,
        rng: &mut dyn rand::Rng,
    ) -> TestOutcome {
        let dialect = s.dialect();
        let from = gen_from_context(rng, schema, &self.config, dialect);
        let mut gen = ExprGen::new(dialect, &self.config, schema, &from.scope);
        let p = gen.gen_predicate(rng, self.config.max_depth.max(1));

        match rng.random_range(0..10) {
            0..=6 => self.where_mode(s, &from, &p, rng),
            7 => self.aggregate_mode(s, &from, &p, rng),
            8 => self.distinct_mode(s, &from, &p, rng),
            _ => self.having_mode(s, &from, rng),
        }
    }
}

// Silence an unused-import warning on TableExpr kept for doc clarity.
#[allow(unused_imports)]
use TableExpr as _TableExprDoc;

#[cfg(test)]
mod tests {
    use super::*;
    use coddb::{Database, Dialect};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sqlgen::state::generate_state;

    #[test]
    fn no_false_alarms_on_clean_engines() {
        for dialect in Dialect::ALL {
            let mut oracle = Tlp::default();
            for seed in 0..25u64 {
                let mut rng = StdRng::seed_from_u64(11_000 + seed);
                let (stmts, schema) = generate_state(&mut rng, dialect, &GenConfig::default());
                let mut db = Database::new(dialect);
                for st in &stmts {
                    db.execute(st).unwrap();
                }
                let mut session = Session::new(&mut db);
                for _ in 0..12 {
                    if let TestOutcome::Bug(r) = oracle.run_one(&mut session, &schema, &mut rng) {
                        panic!("TLP false alarm on clean {dialect}:\n{}", r.to_display());
                    }
                }
            }
        }
    }

    #[test]
    fn partition_shapes() {
        let p = Expr::bin(
            coddb::ast::BinaryOp::Gt,
            Expr::bare_col("c"),
            Expr::lit(1i64),
        );
        let [a, b, c] = partitions(&p);
        assert_eq!(a.to_string(), "(c > 1)");
        assert_eq!(b.to_string(), "(NOT (c > 1))");
        assert_eq!(c.to_string(), "((c > 1) IS NULL)");
    }

    #[test]
    fn detects_distinct_group_bug_through_distinct_mode() {
        // DuckdbDistinctGroupByDrop corrupts DISTINCT+GROUP BY; TLP's
        // DISTINCT partitions use plain DISTINCT, and the paper's bug is
        // keyed on GROUP BY too — TLP catches it through the top-level
        // filter bug class instead. Here we verify TLP detects a bug that
        // fires on a top-level IN list (TidbInValueListWhere).
        let mut db = Database::with_bugs(
            Dialect::Tidb,
            coddb::bugs::BugRegistry::only(coddb::BugId::TidbInValueListWhere),
        );
        db.execute_sql("CREATE TABLE t0 (c0 INT); INSERT INTO t0 VALUES (1), (2), (3)")
            .unwrap();
        let schema = SchemaInfo {
            tables: vec![sqlgen::TableInfo {
                name: "t0".into(),
                columns: vec![("c0".into(), coddb::DataType::Int)],
                is_view: false,
                row_count: 3,
            }],
            indexes: vec![],
            indexed_columns: vec![],
            dialect: Some(Dialect::Tidb),
        };
        let mut oracle = Tlp::default();
        let mut found = false;
        let mut session = Session::new(&mut db);
        for seed in 0..600u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            if oracle.run_one(&mut session, &schema, &mut rng).is_bug() {
                found = true;
                break;
            }
        }
        assert!(found, "TLP should detect the top-level IN value list bug");
    }
}
