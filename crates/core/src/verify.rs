//! The `verify` oracle: static plan verification as a campaign oracle.
//!
//! Every other oracle in this crate observes *executed* results; this one
//! observes the plan tree itself. Each test builds a small fixed scenario
//! whose probe queries exercise the invariant-bearing plan shapes (range
//! seeks, eliminated DESC sorts, hash joins with residuals, outer-join
//! pushdown bait), adds a few randomly generated queries over the
//! campaign's schema for breadth, and runs
//! [`coddb::Database::verify_select`] — planning with the session's
//! active bug registry, then checking the plan against the engine's
//! invariants ([`coddb::validate`]) **without executing a row**. Any
//! violation is a finding: a statically-illegal plan is a planner bug
//! regardless of what execution would return. Findings reproduce and
//! attribute through the standard campaign rerun machinery, exactly like
//! execution-based findings.

use coddb::ast::{Select, SelectCore, SelectItem};
use sqlgen::expr::ExprGen;
use sqlgen::query::gen_from_context;
use sqlgen::{GenConfig, SchemaInfo};

use crate::{BugReport, Oracle, ReportKind, Session, TestOutcome};

const ORACLE_NAME: &str = "verify";

/// Fixed trigger scenario: a physical single-column index for range and
/// ordered seeks, plus a second table for join shapes. Names are
/// prefixed to stay clear of the generated campaign schema.
const SETUP: &[&str] = &[
    "CREATE TABLE vrf_t (k INT, v INT)",
    "INSERT INTO vrf_t VALUES (1, 10), (2, 20), (2, 21), (3, 30)",
    "CREATE INDEX vrf_ik ON vrf_t (k)",
    "CREATE TABLE vrf_r (k INT, w INT)",
    "INSERT INTO vrf_r VALUES (2, 200), (3, 300)",
];

const TEARDOWN: &[&str] = &["DROP TABLE vrf_t", "DROP TABLE vrf_r"];

/// Probe queries covering the invariant-bearing plan shapes.
const PROBES: &[&str] = &[
    "SELECT v FROM vrf_t WHERE k >= 2",
    "SELECT v FROM vrf_t WHERE k = 2",
    "SELECT v FROM vrf_t WHERE k > 0 AND v < 100",
    "SELECT k FROM vrf_t ORDER BY k DESC",
    "SELECT vrf_t.v FROM vrf_t JOIN vrf_r ON vrf_t.k = vrf_r.k AND vrf_t.v < vrf_r.w",
    "SELECT vrf_t.v FROM vrf_t LEFT JOIN vrf_r ON vrf_t.k = vrf_r.k WHERE vrf_r.w > 0",
];

/// How many random breadth queries each test verifies on top of the
/// fixed probes.
const RANDOM_PROBES: usize = 2;

/// The static plan verifier as a campaign oracle.
#[derive(Default)]
pub struct Verify {
    config: GenConfig,
}

impl Oracle for Verify {
    fn name(&self) -> &'static str {
        ORACLE_NAME
    }

    fn run_one(
        &mut self,
        s: &mut Session,
        schema: &SchemaInfo,
        rng: &mut dyn rand::Rng,
    ) -> TestOutcome {
        let dialect = s.dialect();

        // Random breadth probes are drawn *before* any early return so a
        // test consumes the same amount of randomness on every path —
        // the campaign replay machinery depends on it.
        let mut random_probes = Vec::with_capacity(RANDOM_PROBES);
        for _ in 0..RANDOM_PROBES {
            let from = gen_from_context(rng, schema, &self.config, dialect);
            let mut gen = ExprGen::new(dialect, &self.config, schema, &from.scope);
            let p = gen.gen_predicate(rng, self.config.max_depth.max(1));
            random_probes.push(Select::from_core(SelectCore {
                items: vec![SelectItem::Wildcard],
                from: Some(from.table_expr.clone()),
                where_clause: Some(p),
                ..SelectCore::default()
            }));
        }

        for sql in SETUP {
            if let Err(e) = s.db.execute_sql(sql) {
                teardown(s);
                return TestOutcome::Skipped(format!("verify setup failed: {e}"));
            }
        }

        let mut flagged: Vec<(String, Vec<coddb::validate::Violation>)> = Vec::new();
        let mut verify = |s: &mut Session, q: &Select, sql: String| {
            // Planning errors are ordinary expected errors (the random
            // probes can reference dropped columns etc.) — the verifier
            // only judges plans that exist.
            if let Ok(violations) = s.db.verify_select(q) {
                if !violations.is_empty() {
                    flagged.push((sql, violations));
                }
            }
        };
        for probe in PROBES {
            let q = coddb::parser::parse_select(probe).expect("fixed probe parses");
            verify(s, &q, (*probe).to_string());
        }
        for q in &random_probes {
            verify(s, q, q.to_string());
        }
        teardown(s);

        if flagged.is_empty() {
            return TestOutcome::Pass;
        }
        let queries: Vec<(String, String)> = flagged
            .iter()
            .enumerate()
            .map(|(i, (sql, _))| (format!("probe {i}"), sql.clone()))
            .collect();
        let detail = flagged
            .iter()
            .map(|(_, violations)| {
                violations
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join("; ")
            })
            .collect::<Vec<_>>()
            .join(" | ");
        TestOutcome::Bug(BugReport {
            oracle: ORACLE_NAME,
            kind: ReportKind::LogicDiscrepancy,
            queries,
            detail: format!("statically illegal plan: {detail}"),
        })
    }
}

fn teardown(s: &mut Session) {
    for sql in TEARDOWN {
        let _ = s.db.execute_sql(sql);
    }
}
