//! NoREC baseline (Rigger & Su, ESEC/FSE 2020).
//!
//! Non-optimizing reference engine construction: the optimized query
//! `SELECT COUNT(*) FROM ... WHERE p` must agree with counting the rows
//! for which `p` evaluates to TRUE when placed in the projection of an
//! *unoptimized* query. CoddDB gives NoREC a real non-optimizing mode
//! (`Session::query_unoptimized` skips constant folding, pushdown and
//! index selection).
//!
//! Faithful tool scope (used by the paper's Table 2 analysis): WHERE of
//! SELECT only, joins allowed, **no subqueries**.

use coddb::ast::{Select, SelectCore, SelectItem};
use sqlgen::expr::ExprGen;
use sqlgen::query::{build_count_query, gen_from_context};
use sqlgen::{GenConfig, SchemaInfo};

use crate::{error_outcome, value_is_true, BugReport, Oracle, ReportKind, Session, TestOutcome};

const ORACLE_NAME: &str = "norec";

/// The NoREC oracle.
pub struct NoRec {
    config: GenConfig,
}

impl Default for NoRec {
    fn default() -> Self {
        // NoREC does not support subqueries (§1 of the CODDTest paper).
        NoRec {
            config: GenConfig::expressions_only(),
        }
    }
}

impl Oracle for NoRec {
    fn name(&self) -> &'static str {
        ORACLE_NAME
    }

    fn run_one(
        &mut self,
        s: &mut Session,
        schema: &SchemaInfo,
        rng: &mut dyn rand::Rng,
    ) -> TestOutcome {
        let dialect = s.dialect();
        let from = gen_from_context(rng, schema, &self.config, dialect);
        let mut gen = ExprGen::new(dialect, &self.config, schema, &from.scope);
        let p = gen.gen_predicate(rng, self.config.max_depth.max(1));

        // Optimized query: Q = SELECT COUNT(*) FROM ... WHERE p.
        let optimized = build_count_query(&from, Some(p.clone()));

        // Reference query: SELECT p FROM ... executed unoptimized; count
        // the TRUE rows host-side.
        let reference = Select::from_core(SelectCore {
            items: vec![SelectItem::Expr {
                expr: p.clone(),
                alias: None,
            }],
            from: Some(from.table_expr.clone()),
            ..SelectCore::default()
        });

        let o_sql = optimized.to_string();
        let r_sql = reference.to_string();
        let case = vec![("optimized".into(), o_sql), ("unoptimized".into(), r_sql)];

        let o_rel = match s.query(&optimized) {
            Ok(r) => r,
            Err(e) => return error_outcome(ORACLE_NAME, &e, case),
        };
        let r_rel = match s.query_unoptimized(&reference) {
            Ok(r) => r,
            Err(e) => return error_outcome(ORACLE_NAME, &e, case),
        };

        let optimized_count = o_rel.scalar().and_then(|v| v.as_i64()).unwrap_or(-1);
        let reference_count = r_rel
            .rows
            .iter()
            .filter(|row| value_is_true(&row[0]))
            .count() as i64;

        if optimized_count == reference_count {
            TestOutcome::Pass
        } else {
            TestOutcome::Bug(BugReport {
                oracle: ORACLE_NAME,
                kind: ReportKind::LogicDiscrepancy,
                queries: case,
                detail: format!(
                    "optimized count {optimized_count} != unoptimized TRUE count {reference_count}"
                ),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coddb::{Database, Dialect};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sqlgen::state::generate_state;

    #[test]
    fn no_false_alarms_on_clean_engines() {
        for dialect in Dialect::ALL {
            let mut oracle = NoRec::default();
            for seed in 0..25u64 {
                let mut rng = StdRng::seed_from_u64(7_000 + seed);
                let (stmts, schema) = generate_state(&mut rng, dialect, &GenConfig::default());
                let mut db = Database::new(dialect);
                for st in &stmts {
                    db.execute(st).unwrap();
                }
                let mut session = Session::new(&mut db);
                for _ in 0..12 {
                    if let TestOutcome::Bug(r) = oracle.run_one(&mut session, &schema, &mut rng) {
                        panic!("NoREC false alarm on clean {dialect}:\n{}", r.to_display());
                    }
                }
            }
        }
    }

    #[test]
    fn detects_optimizer_dependent_bug() {
        // SqliteIndexedCmpNullTrue fires only under an optimizer-chosen
        // index scan — exactly NoREC's target class.
        let mut db = Database::with_bugs(
            Dialect::Sqlite,
            coddb::bugs::BugRegistry::only(coddb::BugId::SqliteIndexedCmpNullTrue),
        );
        db.execute_sql(
            "CREATE TABLE t0 (c0 INT); INSERT INTO t0 VALUES (1), (NULL), (2);
             CREATE INDEX i0 ON t0 (c0)",
        )
        .unwrap();
        let schema = SchemaInfo {
            tables: vec![sqlgen::TableInfo {
                name: "t0".into(),
                columns: vec![("c0".into(), coddb::DataType::Int)],
                is_view: false,
                row_count: 3,
            }],
            indexes: vec![],
            indexed_columns: vec![],
            dialect: Some(Dialect::Sqlite),
        };
        let mut oracle = NoRec::default();
        let mut found = false;
        let mut session = Session::new(&mut db);
        for seed in 0..400u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            if oracle.run_one(&mut session, &schema, &mut rng).is_bug() {
                found = true;
                break;
            }
        }
        assert!(found, "NoREC should detect the indexed NULL-comparison bug");
    }
}
