//! Integration tests of oracle behaviour: fold shapes, report contents,
//! campaign accounting, attribution determinism, and reducer end-to-end
//! on several mutants.

use coddb::bugs::BugRegistry;
use coddb::{BugId, Database, Dialect};
use coddtest::reduce::{reduce, still_failing, ReducibleCase};
use coddtest::runner::{detects_bug, rerun_test, run_campaign, CampaignConfig};
use coddtest::{make_oracle, ReportKind, Session, TestOutcome};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqlgen::state::generate_state;
use sqlgen::GenConfig;

/// CODDTest bug reports always carry the original / auxiliary / folded
/// triple (or the relation-mode equivalents) so a human can replay them.
#[test]
fn codd_reports_carry_replayable_queries() {
    let (tests, report) =
        detects_bug("codd", BugId::TidbInValueListWhere, 2000, 1).expect("detect");
    assert!(tests > 0);
    assert_eq!(report.oracle, "codd");
    assert_eq!(report.kind, ReportKind::LogicDiscrepancy);
    let labels: Vec<&str> = report.queries.iter().map(|(l, _)| l.as_str()).collect();
    assert!(labels.contains(&"original"), "{labels:?}");
    assert!(labels.contains(&"folded"), "{labels:?}");
    // Every recorded query parses.
    for (label, sql) in &report.queries {
        if sql.to_uppercase().starts_with("SELECT") || sql.to_uppercase().starts_with("WITH") {
            coddb::parser::parse_select(sql)
                .unwrap_or_else(|e| panic!("{label} does not parse: {sql}\n{e}"));
        }
    }
}

/// The folded query of a detected case, replayed by hand, reproduces the
/// discrepancy (reports are not just descriptive strings).
#[test]
fn codd_folded_query_replays() {
    let (_, report) = detects_bug("codd", BugId::CockroachAnyNonValuesSubquery, 2000, 1)
        .expect("detect the ANY bug");
    let get = |label: &str| {
        report
            .queries
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, sql)| sql.clone())
            .unwrap_or_else(|| panic!("missing {label} in {report:?}"))
    };
    // The queries reference generated state; re-detecting with the exact
    // coordinates is covered by rerun determinism below. Here we at least
    // verify O and F are both parseable, distinct queries.
    assert_ne!(get("original"), get("folded"));
}

#[test]
fn rerun_test_is_deterministic() {
    let bug = BugId::MysqlTextIntCompareWhere;
    let cfg = CampaignConfig {
        bugs: BugRegistry::only(bug),
        tests: 800,
        ..CampaignConfig::new(Dialect::Mysql)
    };
    let mut oracle = make_oracle("codd").unwrap();
    let result = run_campaign(oracle.as_mut(), &cfg);
    let finding = result
        .findings
        .first()
        .expect("campaign finds the mysql bug");
    for _ in 0..3 {
        assert!(
            rerun_test("codd", &cfg, finding.state_idx, finding.test_idx, &cfg.bugs),
            "re-running the finding's coordinates must reproduce it"
        );
    }
    // And with no mutants enabled it must pass.
    assert!(!rerun_test(
        "codd",
        &cfg,
        finding.state_idx,
        finding.test_idx,
        &BugRegistry::none()
    ));
}

#[test]
fn campaign_skips_are_bounded() {
    // Skipped tests (expected errors, empty joins) must stay a modest
    // fraction — otherwise an oracle is wasting its budget.
    for name in ["codd", "norec", "tlp", "eet"] {
        let cfg = CampaignConfig {
            tests: 400,
            ..CampaignConfig::new(Dialect::Sqlite)
        };
        let mut oracle = make_oracle(name).unwrap();
        let result = run_campaign(oracle.as_mut(), &cfg);
        let skip_rate = result.skipped as f64 / result.tests_run as f64;
        assert!(skip_rate < 0.5, "{name}: skip rate {skip_rate:.2} too high");
    }
}

#[test]
fn codd_subquery_config_emits_subquery_rich_queries() {
    // The codd-subquery configuration must actually produce more
    // subquery-heavy plans than codd-expression.
    let run = |name: &str| {
        let cfg = CampaignConfig {
            tests: 500,
            ..CampaignConfig::new(Dialect::Sqlite)
        };
        let mut oracle = make_oracle(name).unwrap();
        run_campaign(oracle.as_mut(), &cfg).unique_plans
    };
    let subq = run("codd-subquery");
    let expr = run("codd-expression");
    assert!(
        subq > expr,
        "codd-subquery plans ({subq}) should exceed codd-expression ({expr})"
    );
}

#[test]
fn eet_detects_shape_sensitive_bugs() {
    // EET's tautology wrapper changes the predicate's root shape, so it
    // catches exactly the top-level-sensitive mutants (its transformed
    // query evaluates the same rows through a different root).
    let hit = detects_bug("eet", BugId::TidbIsNullTopLevelInverted, 3000, 2);
    assert!(
        hit.is_some(),
        "EET should catch the top-level IS NULL inversion"
    );
    // Conversely, a corruption that fires identically in both the plain
    // and the transformed predicate stays invisible to EET.
    let miss = detects_bug("eet", BugId::DuckdbCaseSubqueryElse, 2000, 2);
    assert!(
        miss.is_none(),
        "value-consistent CASE corruption is EET-invisible"
    );
}

#[test]
fn reducer_handles_multiple_mutants() {
    // Reduce the Listing-9 case under the bigint mutant.
    let setup = coddb::parser::parse_statements(
        "CREATE TABLE t (c INT);
         CREATE TABLE noise (z TEXT);
         INSERT INTO noise VALUES ('unused');
         INSERT INTO t (c) VALUES (0)",
    )
    .unwrap();
    let original =
        coddb::parser::parse_select("SELECT c FROM t WHERE c IN (SELECT c FROM t)").unwrap();
    let folded =
        coddb::parser::parse_select("SELECT c FROM t WHERE c IN (0, 862827606027206657)").unwrap();
    let bugs = BugRegistry::only(BugId::CockroachInBigIntValueList);
    let case = ReducibleCase {
        setup,
        original,
        folded,
    };
    assert!(still_failing(&case, Dialect::Cockroach, &bugs));
    let reduced = reduce(&case, Dialect::Cockroach, &bugs);
    assert!(still_failing(&reduced, Dialect::Cockroach, &bugs));
    let rendered: Vec<String> = reduced.setup.iter().map(|s| s.to_string()).collect();
    assert!(
        rendered.iter().all(|s| !s.contains("noise")),
        "{rendered:?}"
    );
    assert!(reduced.size() <= case.size());
}

#[test]
fn oracle_names_match_factory_keys() {
    for name in [
        "codd",
        "codd-expression",
        "codd-subquery",
        "norec",
        "tlp",
        "dqe",
        "eet",
    ] {
        let oracle = make_oracle(name).unwrap();
        assert_eq!(oracle.name(), name);
    }
}

/// Running two different oracles against the same session (sharing one
/// database) must not corrupt each other's state: the DQE private table
/// coexists with generated tables.
#[test]
fn oracles_share_a_database_safely() {
    let mut rng = StdRng::seed_from_u64(99);
    let (stmts, schema) = generate_state(&mut rng, Dialect::Sqlite, &GenConfig::default());
    let mut db = Database::new(Dialect::Sqlite);
    for s in &stmts {
        db.execute(s).unwrap();
    }
    let mut session = Session::new(&mut db);
    let mut dqe = make_oracle("dqe").unwrap();
    let mut codd = make_oracle("codd").unwrap();
    for i in 0..6 {
        let mut trng = StdRng::seed_from_u64(1000 + i);
        let a = dqe.run_one(&mut session, &schema, &mut trng);
        let b = codd.run_one(&mut session, &schema, &mut trng);
        for (name, outcome) in [("dqe", &a), ("codd", &b)] {
            if let TestOutcome::Bug(r) = outcome {
                panic!("{name} false alarm on shared session:\n{}", r.to_display());
            }
        }
    }
}

/// Fuel exhaustion inside an oracle test is reported as a hang finding,
/// not a crash of the harness.
#[test]
fn fuel_exhaustion_reports_cleanly() {
    let mut db = Database::new(Dialect::Sqlite);
    db.execute_sql("CREATE TABLE t0 (c0 INT)").unwrap();
    let rows: Vec<String> = (0..200).map(|i| format!("({i})")).collect();
    db.execute_sql(&format!("INSERT INTO t0 VALUES {}", rows.join(",")))
        .unwrap();
    db.set_fuel_limit(2_000);
    let schema = sqlgen::SchemaInfo {
        tables: vec![sqlgen::TableInfo {
            name: "t0".into(),
            columns: vec![("c0".into(), coddb::DataType::Int)],
            is_view: false,
            row_count: 200,
        }],
        indexes: vec![],
        indexed_columns: vec![],
        dialect: Some(Dialect::Sqlite),
    };
    let mut oracle = make_oracle("codd").unwrap();
    let mut session = Session::new(&mut db);
    let mut hangs = 0;
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        if let TestOutcome::Bug(r) = oracle.run_one(&mut session, &schema, &mut rng) {
            assert_eq!(
                r.kind,
                ReportKind::Hang,
                "only hangs expected: {}",
                r.to_display()
            );
            hangs += 1;
        }
    }
    assert!(
        hangs > 0,
        "the tiny fuel budget should trip on join-heavy tests"
    );
}
