//! Regression tests for the campaign accounting fixes:
//!
//! 1. a non-matching-kind finding no longer ends a kind-filtered campaign
//!    early (a crash-first symptom cannot mask a logic mutant),
//! 2. `CampaignResult::qpt` excludes queries issued by `Skipped` tests
//!    from the numerator (its denominator never counted those tests),
//! 3. per-outcome query tallies partition the session totals.
//!
//! (The third accounting fix — merging a setup-failed state's coverage and
//! error tallies — is covered by unit tests next to `merge_shard` in
//! `runner.rs`, because no current mutant can make a generated setup
//! statement fail end-to-end.)

use coddb::bugs::{BugId, BugRegistry};
use coddb::{BugKind, Dialect};
use coddtest::runner::{run_campaign, CampaignConfig};
use coddtest::{make_oracle, BugReport, Oracle, ReportKind, Session, TestOutcome};
use sqlgen::SchemaInfo;

/// The masking scenario from the issue, with real mutants: under the
/// DuckDB profile with the IEJoin crash mutant and the NOT-LIKE logic
/// mutant both active (campaign seed 3), the campaign's first finding is a
/// crash at state 0 / test 11, while the first logic finding only appears
/// at state 2 / test 7.
fn masking_cfg() -> CampaignConfig {
    let mut bugs = BugRegistry::none();
    bugs.enable(BugId::DuckdbCrashIEJoinTypes);
    bugs.enable(BugId::DuckdbNotLikeTopLevel);
    CampaignConfig {
        bugs,
        tests: 200,
        seed: 3,
        stop_on_first_bug: true,
        ..CampaignConfig::new(Dialect::Duckdb)
    }
}

/// Without a kind filter, `stop_on_first_bug` halts on the crash — the
/// pre-fix behaviour that left the budget unspent.
#[test]
fn crash_first_finding_halts_unfiltered_campaign() {
    let mut oracle = make_oracle("codd").unwrap();
    let result = run_campaign(oracle.as_mut(), &masking_cfg());
    assert_eq!(result.findings.len(), 1);
    assert_eq!(result.findings[0].report.kind, ReportKind::Crash);
    assert_eq!(
        (result.findings[0].state_idx, result.findings[0].test_idx),
        (0, 11)
    );
}

/// With `stop_kind` (what `detects_bug` now sets), the same campaign runs
/// past the crash findings and stops at the first *logic* finding — the
/// mutant is detected with the same budget.
#[test]
fn stop_kind_runs_past_mismatched_kind_findings() {
    let cfg = CampaignConfig {
        stop_kind: Some(BugKind::Logic),
        ..masking_cfg()
    };
    let mut oracle = make_oracle("codd").unwrap();
    let result = run_campaign(oracle.as_mut(), &cfg);
    let last = result.findings.last().expect("harvests the logic finding");
    assert_eq!(last.report.kind, ReportKind::LogicDiscrepancy);
    assert_eq!((last.state_idx, last.test_idx), (2, 7));
    // The crash findings before it are still recorded, not dropped.
    assert!(result
        .findings
        .iter()
        .take(result.findings.len() - 1)
        .all(|f| f.report.kind == ReportKind::Crash));
    assert!(result.findings.len() >= 2);
}

/// A scripted oracle with a fixed per-test query/outcome pattern: each
/// `run_one` issues `queries` successful queries, then reports `outcome`.
struct Scripted {
    /// (queries to issue, outcome kind) per test, cycled.
    script: Vec<(u64, ScriptOutcome)>,
    calls: usize,
}

#[derive(Clone, Copy)]
enum ScriptOutcome {
    Pass,
    Skip,
    Bug,
}

impl Oracle for Scripted {
    fn name(&self) -> &'static str {
        "scripted"
    }

    fn run_one(
        &mut self,
        session: &mut Session,
        _schema: &SchemaInfo,
        _rng: &mut dyn rand::Rng,
    ) -> TestOutcome {
        let (queries, outcome) = self.script[self.calls % self.script.len()];
        self.calls += 1;
        let q = coddb::parser::parse_select("SELECT 1").unwrap();
        for _ in 0..queries {
            session.query(&q).unwrap();
        }
        match outcome {
            ScriptOutcome::Pass => TestOutcome::Pass,
            ScriptOutcome::Skip => TestOutcome::Skipped("scripted".into()),
            ScriptOutcome::Bug => TestOutcome::Bug(BugReport {
                oracle: "scripted",
                kind: ReportKind::LogicDiscrepancy,
                queries: vec![("q".into(), "SELECT 1".into())],
                detail: "scripted".into(),
            }),
        }
    }
}

/// Skipped tests issue many queries but complete no test: QPT must count
/// neither those queries (numerator) nor those tests (denominator).
#[test]
fn qpt_excludes_skipped_test_queries() {
    // Pattern per state (10 tests): 5x (2 queries, Pass), 5x (7 queries,
    // Skip). Pre-fix QPT: (5*2 + 5*7) / 5 = 9.0. Correct QPT: 10/5 = 2.0.
    let mut oracle = Scripted {
        script: vec![(2, ScriptOutcome::Pass), (7, ScriptOutcome::Skip)],
        calls: 0,
    };
    let cfg = CampaignConfig {
        tests: 40,
        tests_per_state: 10,
        ..CampaignConfig::new(Dialect::Sqlite)
    };
    let result = run_campaign(&mut oracle, &cfg);
    assert_eq!(result.tests_run, 40);
    assert_eq!(result.passed, 20);
    assert_eq!(result.skipped, 20);
    assert_eq!(result.passed_queries, 40);
    assert_eq!(result.skipped_queries, 140);
    assert_eq!(result.finding_queries, 0);
    assert_eq!(result.qpt(), 2.0, "QPT inflated by skipped tests' queries");
}

/// Findings count as completed tests: their queries stay in the QPT
/// numerator and the finding in the denominator.
#[test]
fn qpt_counts_finding_tests() {
    let mut oracle = Scripted {
        script: vec![
            (3, ScriptOutcome::Pass),
            (9, ScriptOutcome::Skip),
            (3, ScriptOutcome::Bug),
        ],
        calls: 0,
    };
    let cfg = CampaignConfig {
        tests: 30,
        tests_per_state: 6,
        ..CampaignConfig::new(Dialect::Sqlite)
    };
    let result = run_campaign(&mut oracle, &cfg);
    assert_eq!(result.passed, 10);
    assert_eq!(result.skipped, 10);
    assert_eq!(result.findings.len(), 10);
    assert_eq!(result.qpt(), 3.0);
    // The per-outcome tallies partition the session totals exactly.
    assert_eq!(
        result.passed_queries + result.skipped_queries + result.finding_queries,
        result.successful_queries + result.unsuccessful_queries
    );
}

/// Real-oracle invariant across dialects and mutant profiles: per-outcome
/// query counts always partition the Table 3 totals (minus setup errors,
/// which belong to no test).
#[test]
fn per_outcome_tallies_partition_totals() {
    for dialect in Dialect::ALL {
        for bugs in [BugRegistry::none(), BugRegistry::all_for_dialect(dialect)] {
            let cfg = CampaignConfig {
                bugs,
                tests: 60,
                ..CampaignConfig::new(dialect)
            };
            let mut oracle = make_oracle("codd").unwrap();
            let result = run_campaign(oracle.as_mut(), &cfg);
            assert_eq!(
                result.passed_queries + result.skipped_queries + result.finding_queries,
                result.successful_queries + result.unsuccessful_queries,
                "{dialect:?}: setup errors cannot appear without setup failures"
            );
            assert_eq!(result.setup_failures, 0, "{dialect:?}");
        }
    }
}
