//! End-to-end campaigns over the crash-recovery differential oracle: every
//! recovery-path mutant must be detected, detections must attribute to the
//! recovery mutant (not any engine mutant), findings must reproduce from
//! their `(state_idx, test_idx)` coordinates, and a clean engine must stay
//! quiet across the same budget.

use coddb::bugs::{BugRegistry, MediaBugId};
use coddb::{Dialect, RecoveryBugId};
use coddtest::make_oracle;
use coddtest::runner::{
    attribute_bugs, rerun_test, run_campaign, run_campaign_parallel, CampaignConfig,
};
use coddtest::ReportKind;

fn recover_cfg(bugs: BugRegistry, tests: u64) -> CampaignConfig {
    CampaignConfig {
        bugs,
        tests,
        stop_on_first_bug: true,
        ..CampaignConfig::new(Dialect::Sqlite)
    }
}

/// Every seeded recovery-path mutant is caught by a modest campaign, the
/// finding attributes to exactly that recovery mutant, and the finding's
/// coordinates reproduce it deterministically.
#[test]
fn every_recovery_mutant_is_detected_and_attributed() {
    for bug in RecoveryBugId::ALL {
        let cfg = recover_cfg(BugRegistry::only_recovery(bug), 600);
        let mut oracle = make_oracle("recover").unwrap();
        let mut result = run_campaign(oracle.as_mut(), &cfg);
        assert!(
            !result.findings.is_empty(),
            "{}: no finding in {} tests",
            bug.name(),
            result.tests_run
        );
        attribute_bugs(&mut result, &cfg, "recover");
        let finding = &result.findings[0];
        assert!(
            finding.attributed_recovery.contains(&bug),
            "{}: finding not attributed to its mutant ({:?})",
            bug.name(),
            finding.attributed_recovery
        );
        assert!(
            finding.attributed.is_empty(),
            "{}: recovery finding wrongly attributed to engine mutants {:?}",
            bug.name(),
            finding.attributed
        );
        // The repro contract: the coordinates replay the divergence under
        // the mutant and stay clean without it.
        assert!(rerun_test(
            "recover",
            &cfg,
            finding.state_idx,
            finding.test_idx,
            &cfg.bugs
        ));
        assert!(!rerun_test(
            "recover",
            &cfg,
            finding.state_idx,
            finding.test_idx,
            &BugRegistry::none()
        ));
        // Recovery divergences are logic or internal-error findings, never
        // silent.
        assert!(
            matches!(
                finding.report.kind,
                ReportKind::LogicDiscrepancy | ReportKind::InternalError
            ),
            "{}: unexpected kind {:?}",
            bug.name(),
            finding.report.kind
        );
        assert!(
            finding.report.detail.contains("script_seed="),
            "{}: detail lacks repro seeds: {}",
            bug.name(),
            finding.report.detail
        );
    }
}

/// Every media-fault mutant is caught by the same `recover` campaign (the
/// oracle's seeded media axis exercises bit rot, both read-fault regimes
/// and disk-full appends), attributes into its own `attributed_media`
/// family, and reproduces from its coordinates.
#[test]
fn every_media_mutant_is_detected_and_attributed() {
    for bug in MediaBugId::ALL {
        let cfg = recover_cfg(BugRegistry::only_media(bug), 900);
        let mut oracle = make_oracle("recover").unwrap();
        let mut result = run_campaign(oracle.as_mut(), &cfg);
        assert!(
            !result.findings.is_empty(),
            "{}: no finding in {} tests",
            bug.name(),
            result.tests_run
        );
        attribute_bugs(&mut result, &cfg, "recover");
        let finding = &result.findings[0];
        assert!(
            finding.attributed_media.contains(&bug),
            "{}: finding not attributed to its mutant ({:?})",
            bug.name(),
            finding.attributed_media
        );
        assert!(
            finding.attributed.is_empty()
                && finding.attributed_recovery.is_empty()
                && finding.attributed_index.is_empty(),
            "{}: media finding wrongly attributed outside its family",
            bug.name()
        );
        assert!(rerun_test(
            "recover",
            &cfg,
            finding.state_idx,
            finding.test_idx,
            &cfg.bugs
        ));
        assert!(!rerun_test(
            "recover",
            &cfg,
            finding.state_idx,
            finding.test_idx,
            &BugRegistry::none()
        ));
        assert!(
            matches!(
                finding.report.kind,
                ReportKind::LogicDiscrepancy | ReportKind::InternalError
            ),
            "{}: unexpected kind {:?}",
            bug.name(),
            finding.report.kind
        );
        assert!(
            finding.report.detail.contains("script_seed=")
                && finding.report.detail.contains("media_seed="),
            "{}: detail lacks repro seeds: {}",
            bug.name(),
            finding.report.detail
        );
    }
}

/// A clean engine passes a recovery campaign with zero findings — the
/// differential does not false-alarm on genuine crash scenarios.
#[test]
fn clean_engine_recovery_campaign_is_quiet() {
    let cfg = CampaignConfig {
        tests: 300,
        ..CampaignConfig::new(Dialect::Sqlite)
    };
    let mut oracle = make_oracle("recover").unwrap();
    let result = run_campaign(oracle.as_mut(), &cfg);
    assert!(
        result.findings.is_empty(),
        "clean engine diverged: {}",
        result.findings[0].report.to_display()
    );
    assert!(result.passed > 0, "no scenario completed");
}

/// The recover oracle rides the shared campaign machinery, so parallel and
/// sequential campaigns must agree byte-for-byte on what they find.
#[test]
fn recover_campaigns_are_parallel_deterministic() {
    let cfg = CampaignConfig {
        bugs: BugRegistry::only_recovery(RecoveryBugId::ReplayUncommitted),
        tests: 200,
        stop_on_first_bug: false,
        ..CampaignConfig::new(Dialect::Mysql)
    };
    let mut oracle = make_oracle("recover").unwrap();
    let seq = run_campaign(oracle.as_mut(), &cfg);
    let par = run_campaign_parallel("recover", &cfg, 4).expect("known oracle");
    assert_eq!(seq.tests_run, par.tests_run);
    assert_eq!(seq.findings.len(), par.findings.len());
    for (a, b) in seq.findings.iter().zip(&par.findings) {
        assert_eq!((a.state_idx, a.test_idx), (b.state_idx, b.test_idx));
        assert_eq!(a.report.detail, b.report.detail);
    }
}
