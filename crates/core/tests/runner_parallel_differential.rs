//! Differential suite for the parallel campaign runner: at every thread
//! count, `run_campaign_parallel` must be *byte-identical* to
//! `run_campaign` — findings coordinates and order, unique plans, the
//! coverage bitset, and every counter — across all dialects, with and
//! without injected mutants, and under `stop_on_first_bug`.

use coddb::bugs::{BugId, BugRegistry};
use coddb::Dialect;
use coddtest::make_oracle;
use coddtest::runner::{run_campaign, run_campaign_parallel, CampaignConfig, CampaignResult};

const THREADS: &[usize] = &[1, 2, 4];

/// Everything except `elapsed` (wall-clock) must match exactly.
fn assert_identical(seq: &CampaignResult, par: &CampaignResult, label: &str) {
    assert_eq!(seq.oracle, par.oracle, "{label}: oracle");
    assert_eq!(seq.tests_run, par.tests_run, "{label}: tests_run");
    assert_eq!(seq.passed, par.passed, "{label}: passed");
    assert_eq!(seq.skipped, par.skipped, "{label}: skipped");
    assert_eq!(
        seq.successful_queries, par.successful_queries,
        "{label}: successful_queries"
    );
    assert_eq!(
        seq.unsuccessful_queries, par.unsuccessful_queries,
        "{label}: unsuccessful_queries"
    );
    assert_eq!(
        seq.passed_queries, par.passed_queries,
        "{label}: passed_queries"
    );
    assert_eq!(
        seq.skipped_queries, par.skipped_queries,
        "{label}: skipped_queries"
    );
    assert_eq!(
        seq.finding_queries, par.finding_queries,
        "{label}: finding_queries"
    );
    assert_eq!(
        seq.setup_failures, par.setup_failures,
        "{label}: setup_failures"
    );
    assert_eq!(seq.unique_plans, par.unique_plans, "{label}: unique_plans");
    assert_eq!(
        seq.coverage_percent.to_bits(),
        par.coverage_percent.to_bits(),
        "{label}: coverage_percent ({} vs {})",
        seq.coverage_percent,
        par.coverage_percent
    );
    assert_eq!(
        seq.findings.len(),
        par.findings.len(),
        "{label}: findings count"
    );
    for (i, (s, p)) in seq.findings.iter().zip(par.findings.iter()).enumerate() {
        assert_eq!(
            (s.state_idx, s.test_idx),
            (p.state_idx, p.test_idx),
            "{label}: finding #{i} coordinates"
        );
        assert_eq!(s.report.kind, p.report.kind, "{label}: finding #{i} kind");
        assert_eq!(
            s.report.oracle, p.report.oracle,
            "{label}: finding #{i} oracle"
        );
        assert_eq!(
            s.report.queries, p.report.queries,
            "{label}: finding #{i} queries"
        );
        assert_eq!(
            s.report.detail, p.report.detail,
            "{label}: finding #{i} detail"
        );
    }
}

fn differential(oracle_name: &str, cfg: &CampaignConfig, label: &str) -> CampaignResult {
    let mut oracle = make_oracle(oracle_name).unwrap();
    let seq = run_campaign(oracle.as_mut(), cfg);
    for &threads in THREADS {
        let par = run_campaign_parallel(oracle_name, cfg, threads).expect("known oracle name");
        assert_identical(&seq, &par, &format!("{label} threads={threads}"));
    }
    seq
}

#[test]
fn clean_campaigns_identical_across_dialects() {
    for dialect in Dialect::ALL {
        let cfg = CampaignConfig {
            tests: 80,
            tests_per_state: 10,
            ..CampaignConfig::new(dialect)
        };
        let seq = differential("codd", &cfg, &format!("clean {dialect:?}"));
        assert_eq!(seq.tests_run, 80);
        assert!(seq.findings.is_empty(), "clean {dialect:?} found bugs");
    }
}

#[test]
fn mutant_campaigns_identical_across_dialects() {
    for dialect in Dialect::ALL {
        let cfg = CampaignConfig {
            bugs: BugRegistry::all_for_dialect(dialect),
            tests: 80,
            tests_per_state: 10,
            ..CampaignConfig::new(dialect)
        };
        differential("codd", &cfg, &format!("mutants {dialect:?}"));
    }
}

/// Oracles with very different session patterns (NoREC's unoptimized
/// reference queries, DQE's per-test table staging and snapshot/restore,
/// TLP's partition unions) all shard and merge identically.
#[test]
fn other_oracles_identical() {
    for oracle_name in ["norec", "tlp", "dqe", "eet"] {
        let cfg = CampaignConfig {
            tests: 60,
            tests_per_state: 10,
            ..CampaignConfig::new(Dialect::Sqlite)
        };
        differential(oracle_name, &cfg, oracle_name);
    }
}

/// A budget that does not divide evenly by `tests_per_state` exercises the
/// parallel merge's boundary-state recomputation: the worker shard for the
/// last state runs a full batch, but only the remainder may count.
#[test]
fn budget_boundary_state_identical() {
    let cfg = CampaignConfig {
        tests: 73,
        tests_per_state: 20,
        ..CampaignConfig::new(Dialect::Cockroach)
    };
    let seq = differential("codd", &cfg, "boundary");
    assert_eq!(seq.tests_run, 73);
}

/// A campaign smaller than one state's batch: the single worker shard is
/// capped at the whole budget and no recomputation is needed.
#[test]
fn budget_smaller_than_one_state_identical() {
    let cfg = CampaignConfig {
        tests: 7,
        tests_per_state: 20,
        ..CampaignConfig::new(Dialect::Sqlite)
    };
    let seq = differential("codd", &cfg, "tiny");
    assert_eq!(seq.tests_run, 7);
}

/// `stop_on_first_bug` picks the same earliest `(state_idx, test_idx)`
/// finding at every thread count.
#[test]
fn stop_on_first_bug_picks_same_earliest_finding() {
    let cfg = CampaignConfig {
        bugs: BugRegistry::all_for_dialect(Dialect::Tidb),
        tests: 400,
        stop_on_first_bug: true,
        ..CampaignConfig::new(Dialect::Tidb)
    };
    let seq = differential("codd", &cfg, "stop_on_first_bug");
    assert!(
        !seq.findings.is_empty(),
        "TiDB mutant campaign should stop on a finding"
    );
    // The campaign stopped at the finding, not at budget exhaustion.
    assert!(seq.tests_run < 400);
}

/// Same, with a kind filter: the campaign runs *past* non-matching
/// findings and every thread count stops at the same first logic finding.
#[test]
fn stop_kind_picks_same_earliest_matching_finding() {
    let mut bugs = BugRegistry::none();
    bugs.enable(BugId::DuckdbCrashIEJoinTypes);
    bugs.enable(BugId::DuckdbNotLikeTopLevel);
    let cfg = CampaignConfig {
        bugs,
        tests: 200,
        seed: 3,
        stop_on_first_bug: true,
        stop_kind: Some(coddb::BugKind::Logic),
        ..CampaignConfig::new(Dialect::Duckdb)
    };
    let seq = differential("codd", &cfg, "stop_kind");
    let last = seq.findings.last().expect("stops on a logic finding");
    assert_eq!(last.report.kind, coddtest::ReportKind::LogicDiscrepancy);
    assert!(
        seq.findings
            .iter()
            .any(|f| f.report.kind == coddtest::ReportKind::Crash),
        "non-matching findings before the stop are still recorded"
    );
}

#[test]
fn unknown_oracle_name_is_none() {
    let cfg = CampaignConfig::new(Dialect::Sqlite);
    assert!(run_campaign_parallel("no-such-oracle", &cfg, 2).is_none());
}
